//! Runtime-dispatched gather kernels.
//!
//! The query hot loop is the gather [`CsrMatrix::row_dot_scattered`]: one
//! dot product of a `U⁻¹` row against the scattered query column per
//! candidate. On the dense rows hub queries touch, the reference kernel's
//! single scalar accumulator serialises every add behind the previous
//! one — the loop runs at FP-add latency, not throughput. This module
//! provides two wider kernels and the machinery to pick one safely at
//! runtime:
//!
//! * [`CsrMatrix::row_dot_unrolled4`] — a portable fixed-width kernel with
//!   **four** independent accumulators: lane `j` sums the row's nonzeros at
//!   positions `≡ j (mod 4)`, and the lanes reduce as
//!   `(acc0 + acc2) + (acc1 + acc3)`.
//! * [`CsrMatrix::row_dot_avx2`] (x86-64 only) — the same kernel as four
//!   SIMD lanes: stamps are fetched four at once (`vpgatherdd`), compared
//!   against the generation in one instruction, and values are fetched
//!   with a *masked* gather (`vgatherdpd`) so lanes whose stamp check fails
//!   never touch the value array at all.
//!
//! Both kernels perform **the same lane operations in the same order** —
//! unmatched positions contribute an explicit `value = 0.0` to their lane
//! (instead of the reference kernel's skipped add), full four-wide chunks
//! first, the `len % 4` tail folded into lanes `0..tail` scalar-wise, then
//! the fixed lane reduction. Their results are therefore **bit-identical
//! to each other on every row**, on every machine — deterministic output
//! no matter which kernel the host dispatches to — though they may differ
//! from the one-accumulator reference in the last bits (different
//! association order; the equivalence suite pins `≤ 1e-12` against it, and
//! the search results stay exact against the iterative ground truth under
//! every kernel).
//!
//! Selection is two-phase so unsupported choices fail *typed* instead of
//! faulting: a [`GatherKernel`] is the caller's request, and
//! [`GatherKernel::resolve`] checks it against the host CPU, returning a
//! construction-gated [`ResolvedKernel`] token — the only way to obtain
//! one — or [`SparseError::UnsupportedKernel`]. Only [`GatherKernel::Auto`]
//! and [`GatherKernel::Adaptive`] ever fall back (SIMD where detected,
//! otherwise the unrolled kernel); an explicit `Simd` request on a CPU
//! without AVX2 is an error, never a silent downgrade.
//!
//! # The adaptive per-row policy
//!
//! PR 3 measured the kernels splitting cleanly by stamp-hit rate: the
//! branchy scalar gather wins on **miss-dominated** rows (it skips the
//! value load on every miss — a 3× DRAM-traffic saving once the index
//! outgrows cache), while the wide kernels win on **hit-dominated** (hub)
//! rows where the FP-add latency chain binds. [`GatherKernel::Adaptive`]
//! picks per row: [`adaptive_picks_wide`] combines a build-time
//! [`RowStat`] (nonzeros + column span) with the loaded query column's
//! bucketed density ([`ScatteredColumn::expected_hit_rate`]) into a
//! predicted stamp-hit rate, and selects the wide kernel only where hits
//! are predicted to dominate (`≥` [`ADAPTIVE_WIDE_HIT_RATE`]). The
//! decision is a **pure function of index + query** — thresholds are
//! fixed constants, no host feature or cache size is ever consulted — so
//! which *class* (scalar vs wide) executes a row is identical on every
//! machine; within the wide class the host picks AVX2 or the unrolled
//! twin, which are bit-identical to each other, so whole-query results
//! stay deterministic across machines.

use crate::{CsrMatrix, Index, Result, ScatteredColumn, SparseError};
use std::fmt;
use std::str::FromStr;

/// A requested gather kernel, resolved against the host CPU by
/// [`resolve`](GatherKernel::resolve) before use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatherKernel {
    /// The one-accumulator reference gather
    /// ([`CsrMatrix::row_dot_scattered`]), bit-identical to the merge join.
    Scalar,
    /// The portable four-accumulator kernel
    /// ([`CsrMatrix::row_dot_unrolled4`]).
    Unrolled4,
    /// The vector kernel ([`CsrMatrix::row_dot_avx2`] on x86-64 with AVX2).
    /// Resolution fails on hosts that cannot honour it.
    Simd,
    /// One fixed kernel for every row: `Simd` where the host supports it,
    /// otherwise `Unrolled4`.
    Auto,
    /// Per-row selection between the scalar and the wide kernel by the
    /// deterministic hit-rate policy ([`adaptive_picks_wide`]); the wide
    /// arm is `Simd` where the host supports it, otherwise `Unrolled4`
    /// (bit-identical to each other). Resolves on every host. The
    /// recommended default.
    #[default]
    Adaptive,
}

impl GatherKernel {
    /// Every selectable kernel, in CLI presentation order.
    pub const ALL: [GatherKernel; 5] = [
        GatherKernel::Scalar,
        GatherKernel::Unrolled4,
        GatherKernel::Simd,
        GatherKernel::Auto,
        GatherKernel::Adaptive,
    ];

    /// The selector's spelling (also what [`FromStr`] parses).
    pub fn name(self) -> &'static str {
        match self {
            GatherKernel::Scalar => "scalar",
            GatherKernel::Unrolled4 => "unrolled",
            GatherKernel::Simd => "simd",
            GatherKernel::Auto => "auto",
            GatherKernel::Adaptive => "adaptive",
        }
    }

    /// Resolves the request against the host CPU. `Scalar` and `Unrolled4`
    /// always succeed; `Simd` succeeds only where the vector kernel can
    /// actually run ([`simd_support`] explains the host's answer); `Auto`
    /// and `Adaptive` fall back to the unrolled wide kernel when SIMD is
    /// unavailable.
    pub fn resolve(self) -> Result<ResolvedKernel> {
        match self {
            GatherKernel::Scalar => Ok(ResolvedKernel(Dispatch::Scalar)),
            GatherKernel::Unrolled4 => {
                Ok(ResolvedKernel(Dispatch::Wide(WideDispatch::Unrolled4)))
            }
            GatherKernel::Simd => match simd_support() {
                Ok(wide) => Ok(ResolvedKernel(Dispatch::Wide(wide))),
                Err(reason) => Err(SparseError::UnsupportedKernel {
                    requested: self.name().to_string(),
                    reason,
                }),
            },
            GatherKernel::Auto => Ok(ResolvedKernel(Dispatch::Wide(
                simd_support().unwrap_or(WideDispatch::Unrolled4),
            ))),
            GatherKernel::Adaptive => Ok(ResolvedKernel(Dispatch::Adaptive(
                simd_support().unwrap_or(WideDispatch::Unrolled4),
            ))),
        }
    }
}

impl fmt::Display for GatherKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for GatherKernel {
    type Err = SparseError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "scalar" => Ok(GatherKernel::Scalar),
            "unrolled" | "unrolled4" => Ok(GatherKernel::Unrolled4),
            "simd" => Ok(GatherKernel::Simd),
            "auto" => Ok(GatherKernel::Auto),
            "adaptive" => Ok(GatherKernel::Adaptive),
            other => Err(SparseError::UnsupportedKernel {
                requested: other.to_string(),
                reason: "unknown kernel (expected scalar, unrolled, simd, auto or adaptive)"
                    .to_string(),
            }),
        }
    }
}

/// Whether the host can run the vector kernel, and which one.
fn simd_support() -> std::result::Result<WideDispatch, String> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Ok(WideDispatch::Avx2)
        } else {
            Err("host x86-64 CPU does not report AVX2".to_string())
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Err(format!(
            "no vector gather kernel for target architecture {}",
            std::env::consts::ARCH
        ))
    }
}

/// A kernel choice validated against the host CPU — the token
/// [`CsrMatrix::row_dot_scattered_with`] dispatches on.
///
/// Only obtainable through [`GatherKernel::resolve`]; the inner dispatch
/// target is private so a vector variant can never be conjured on a host
/// that failed detection (calling AVX2 code there would be undefined
/// behaviour, not just wrong).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedKernel(Dispatch);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dispatch {
    /// The one-accumulator reference gather on every row.
    Scalar,
    /// One fixed wide kernel on every row.
    Wide(WideDispatch),
    /// Per-row scalar-vs-wide by the deterministic hit-rate policy; the
    /// payload is the host's wide arm.
    Adaptive(WideDispatch),
}

/// The host-validated wide kernel: the portable unrolled one, or its
/// bit-identical AVX2 twin where detection succeeded. Construction-gated
/// like [`ResolvedKernel`] (no public constructor), so a vector variant
/// can never be conjured on a host that failed detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WideDispatch {
    Unrolled4,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl ResolvedKernel {
    /// What actually runs, for logs and stats: `"scalar"`, `"unrolled"`,
    /// `"avx2"`, or the adaptive policy with its resolved wide arm
    /// (`"adaptive(avx2)"` / `"adaptive(unrolled)"`).
    pub fn name(self) -> &'static str {
        match self.0 {
            Dispatch::Scalar => "scalar",
            Dispatch::Wide(WideDispatch::Unrolled4) => "unrolled",
            #[cfg(target_arch = "x86_64")]
            Dispatch::Wide(WideDispatch::Avx2) => "avx2",
            Dispatch::Adaptive(WideDispatch::Unrolled4) => "adaptive(unrolled)",
            #[cfg(target_arch = "x86_64")]
            Dispatch::Adaptive(WideDispatch::Avx2) => "adaptive(avx2)",
        }
    }

    /// Whether this resolution can dispatch to a vector (`std::arch`)
    /// path (for `Adaptive`: whether its wide arm is the vector kernel).
    pub fn is_simd(self) -> bool {
        match self.0 {
            Dispatch::Scalar | Dispatch::Wide(WideDispatch::Unrolled4) => false,
            Dispatch::Adaptive(WideDispatch::Unrolled4) => false,
            #[cfg(target_arch = "x86_64")]
            Dispatch::Wide(WideDispatch::Avx2) | Dispatch::Adaptive(WideDispatch::Avx2) => true,
        }
    }

    /// Whether this resolution runs the per-row adaptive policy.
    pub fn is_adaptive(self) -> bool {
        matches!(self.0, Dispatch::Adaptive(_))
    }
}

impl Default for ResolvedKernel {
    /// The `Adaptive` resolution for this host (the recommended default).
    fn default() -> Self {
        GatherKernel::Adaptive.resolve().expect("Adaptive always resolves")
    }
}

/// Build-time per-row statistics the adaptive policy consumes: the row's
/// stored-entry count and its column span. Derivable from any layout in
/// `O(1)`, but materialised as a packed table at index-assembly time so
/// the policy never touches the (DRAM-resident) index arrays just to make
/// its decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RowStat {
    /// Stored entries of the row.
    pub nnz: u32,
    /// Smallest column (0 for an empty row).
    pub first: u32,
    /// Largest column (0 for an empty row).
    pub last: u32,
}

/// Rows with fewer stored entries than this never pay off the wide
/// kernels' fixed lane/reduction overhead; the policy keeps them scalar.
pub const ADAPTIVE_MIN_WIDE_NNZ: u32 = 16;

/// Predicted stamp-hit rate at which the policy hands a row to the wide
/// kernel. Exactly the miss-dominated boundary: below one-half, most
/// probes miss and the branchy scalar gather's skipped value loads win;
/// above it, the hit-side FP latency chain dominates and the four
/// independent lanes pay off.
pub const ADAPTIVE_WIDE_HIT_RATE: f64 = 0.5;

/// Stored value bytes (`8 × nnz`) up to which an index is classed
/// [`IndexFootprint::Resident`]: small enough that gathers run cache-warm
/// and the latency model behind [`ADAPTIVE_WIDE_HIT_RATE`] applies.
/// A *nominal* machine-independent figure (32 MiB), deliberately **not**
/// the host's cache size — consulting the host would make the executed
/// kernel class machine-dependent. Keyed to value bytes rather than index
/// bytes so the class (and therefore the row's kernel arm) is identical
/// across row layouts, preserving flat/blocked bit-identity.
pub const ADAPTIVE_RESIDENT_VALUE_BYTES: usize = 1 << 25;

/// The wide-arm hit-rate bar for [`IndexFootprint::Dram`] indexes.
/// BENCH_PR4 measured the regime flip: once the index outgrows cache the
/// prefetched scalar loop saturates DRAM bandwidth and beats the AVX2 arm
/// even on ~90%-hit rows, because the wide kernels' unconditional value
/// loads turn every predicted miss into wasted DRAM traffic. Raising the
/// bar to 7/8 keeps the wide arm only where stamp hits are so dominant
/// that the extra traffic is negligible.
pub const ADAPTIVE_DRAM_WIDE_HIT_RATE: f64 = 0.875;

/// A build-time classification of the whole index's memory footprint —
/// the third input to the adaptive policy. Derived once at store-assembly
/// time from the stored value bytes (a pure build-time quantity, never a
/// host measurement), so the policy remains a pure function of
/// index + query and executes identically on every machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexFootprint {
    /// Value payload within [`ADAPTIVE_RESIDENT_VALUE_BYTES`]: gathers are
    /// expected cache-warm; the classic hit-rate bar applies.
    #[default]
    Resident,
    /// Value payload beyond the resident bound: gathers stream from DRAM;
    /// the wide arm must clear [`ADAPTIVE_DRAM_WIDE_HIT_RATE`].
    Dram,
}

impl IndexFootprint {
    /// Classifies an index by its stored value bytes (`8 × nnz`).
    pub fn classify(value_bytes: usize) -> IndexFootprint {
        if value_bytes > ADAPTIVE_RESIDENT_VALUE_BYTES {
            IndexFootprint::Dram
        } else {
            IndexFootprint::Resident
        }
    }

    /// The wide-arm hit-rate bar for this class.
    #[inline]
    pub fn wide_hit_rate(self) -> f64 {
        match self {
            IndexFootprint::Resident => ADAPTIVE_WIDE_HIT_RATE,
            IndexFootprint::Dram => ADAPTIVE_DRAM_WIDE_HIT_RATE,
        }
    }
}

/// The adaptive policy: `true` hands the row to the wide kernel. A pure
/// function of the row's build-time stats and the loaded query column —
/// fixed constants, no host queries — so the choice is identical on every
/// machine (pinned by the policy unit tests and the layout/kernel
/// equivalence suites).
///
/// The hit-rate comparison is a cross-multiplied form of
/// `in/covered ≥ ADAPTIVE_WIDE_HIT_RATE` (one multiply, no division):
/// the predicate sits on the per-candidate hot path, and a division
/// there would tax precisely the scalar-bound rows the policy is
/// protecting.
#[inline]
pub fn adaptive_picks_wide(stat: RowStat, column: &ScatteredColumn) -> bool {
    adaptive_picks_wide_with(stat, column, IndexFootprint::Resident)
}

/// [`adaptive_picks_wide`] with the index's build-time footprint class as
/// the third input: `Resident` applies the classic
/// [`ADAPTIVE_WIDE_HIT_RATE`] bar (so this is exactly
/// [`adaptive_picks_wide`]), `Dram` the stricter
/// [`ADAPTIVE_DRAM_WIDE_HIT_RATE`]. Still a pure function of build-time
/// and query-time quantities — the footprint is derived from stored value
/// bytes at assembly, never from host cache geometry.
#[inline]
pub fn adaptive_picks_wide_with(
    stat: RowStat,
    column: &ScatteredColumn,
    footprint: IndexFootprint,
) -> bool {
    if stat.nnz < ADAPTIVE_MIN_WIDE_NNZ {
        return false;
    }
    let (in_window, covered) = column.window_density(stat.first, stat.last);
    covered > 0 && in_window as f64 >= footprint.wide_hit_rate() * covered as f64
}

/// Byte-traffic counters the gather entry points accumulate, the raw
/// material for `SearchStats::bytes_touched` and the per-kernel row
/// split. `value_bytes` follows a fixed *accounting model* rather than a
/// hardware measurement — scalar rows are charged 8 bytes per stamp hit
/// (the loads the branchy gather executes), wide rows 8 bytes per stored
/// entry (the unrolled kernel's unconditional touch; the AVX2 twin's
/// masked gather is charged the same so the counters stay
/// machine-independent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatherCounters {
    /// Rows executed by the scalar gather.
    pub rows_scalar: usize,
    /// Rows executed by a wide kernel.
    pub rows_wide: usize,
    /// Index bytes streamed by the gathers (layout-dependent: 4/nnz flat,
    /// 2/nnz + 8/run blocked).
    pub index_bytes: usize,
    /// Value bytes touched under the accounting model above.
    pub value_bytes: usize,
    /// Stored entries of every gathered row, independent of layout and
    /// kernel arm — the query-budget currency (`QueryBudget`'s
    /// `max_gather_nnz` meters this), deliberately identical across
    /// execution strategies so a budget cannot change *which* queries
    /// complete under a different kernel.
    pub nnz: usize,
}

impl GatherCounters {
    /// Zeroes every counter (start of a query).
    pub fn reset(&mut self) {
        *self = GatherCounters::default();
    }
}

/// Reusable decode scratch for the wide kernels over the blocked layout:
/// run/delta pairs are expanded into this flat `u32` column buffer, and
/// the *same* slice kernels as the flat layout then run over it — that
/// sharing is what makes the layouts bit-identical under every kernel.
/// Sized to the largest row once, it allocates nothing afterwards.
#[derive(Debug, Clone, Default)]
pub struct GatherScratch {
    pub(crate) cols: Vec<u32>,
}

impl GatherScratch {
    /// Scratch with capacity for rows up to `max_row_nnz` entries.
    pub fn with_capacity(max_row_nnz: usize) -> Self {
        GatherScratch { cols: Vec::with_capacity(max_row_nnz) }
    }
}

/// The one-accumulator reference gather over parallel `(cols, vals)`
/// slices, also counting the stamp hits (executed value loads). The slice
/// form is shared by the flat and blocked layouts — whoever produces the
/// column sequence, the arithmetic is this one function.
#[inline]
pub(crate) fn gather_scalar_counting(
    cols: &[Index],
    vals: &[f64],
    buf: &ScatteredColumn,
) -> (f64, usize) {
    let (stamps, generation, values) = buf.raw_parts();
    let mut acc = 0.0;
    let mut hits = 0usize;
    for (&c, &v) in cols.iter().zip(vals) {
        let c = c as usize;
        if stamps[c] == generation {
            acc += v * values[c];
            hits += 1;
        }
    }
    (acc, hits)
}

/// The portable four-accumulator gather over parallel `(cols, vals)`
/// slices: lane `j` accumulates the entries at positions `≡ j (mod 4)`;
/// an unmatched position contributes `value × 0.0` to its lane; the
/// `len % 4` tail lands in lanes `0..tail`; lanes reduce as
/// `(acc0 + acc2) + (acc1 + acc3)`.
///
/// This exact operation order is the cross-kernel contract: the SIMD
/// kernel performs the same per-lane multiplies and adds in the same
/// sequence, so its results are bit-identical to this one on every row
/// (pinned by the kernel equivalence suite). Shared by both layouts.
#[inline]
pub(crate) fn gather_unrolled4(cols: &[Index], vals: &[f64], buf: &ScatteredColumn) -> f64 {
    let (stamps, generation, values) = buf.raw_parts();
    #[inline(always)]
    fn lane(stamps: &[u32], generation: u32, values: &[f64], c: u32, v: f64) -> f64 {
        let c = c as usize;
        let x = if stamps[c] == generation { values[c] } else { 0.0 };
        v * x
    }
    // Four named accumulators (not an array) so they live in registers:
    // the whole point is breaking the FP-add latency chain, which an
    // in-memory accumulator would silently re-serialise through
    // store-to-load forwarding.
    let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut col_chunks = cols.chunks_exact(4);
    let mut val_chunks = vals.chunks_exact(4);
    for (cc, vv) in (&mut col_chunks).zip(&mut val_chunks) {
        acc0 += lane(stamps, generation, values, cc[0], vv[0]);
        acc1 += lane(stamps, generation, values, cc[1], vv[1]);
        acc2 += lane(stamps, generation, values, cc[2], vv[2]);
        acc3 += lane(stamps, generation, values, cc[3], vv[3]);
    }
    let mut acc = [acc0, acc1, acc2, acc3];
    for (j, (&c, &v)) in col_chunks.remainder().iter().zip(val_chunks.remainder()).enumerate() {
        acc[j] += lane(stamps, generation, values, c, v);
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3])
}

/// The AVX2 gather over parallel `(cols, vals)` slices: four stamps per
/// `vpgatherdd`, one generation compare per chunk, and a *masked*
/// `vgatherdpd` so failed lanes never read the value array. Lane
/// arithmetic (`vmulpd` + `vaddpd`, no FMA) and the tail/reduction mirror
/// [`gather_unrolled4`] exactly, so the two are bit-identical on every
/// row.
///
/// # Safety
/// The host CPU must support AVX2, and every entry of `cols` must be a
/// valid in-bounds index into `buf`'s stamp/value arrays.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn gather_avx2(cols: &[Index], vals: &[f64], buf: &ScatteredColumn) -> f64 {
    use std::arch::x86_64::*;
    // The gathers sign-extend each 32-bit index lane: a column index
    // >= 2^31 would wrap negative and read out of bounds. Unreachable
    // for any matrix this crate can build in practice, but the unsafe
    // block must not rely on "in practice" — fail loudly instead.
    assert!(
        buf.dim() <= i32::MAX as usize,
        "AVX2 gather kernel limited to dimensions < 2^31"
    );
    let (stamps, generation, values) = buf.raw_parts();
    let split = cols.len() - cols.len() % 4;
    let generation_v = _mm_set1_epi32(generation as i32);
    let zero = _mm256_setzero_pd();
    let mut acc_v = zero;
    let mut i = 0;
    while i < split {
        // SAFETY (for every gather below): the caller guarantees `cols`
        // holds in-bounds indices for a buffer whose dimension (asserted
        // above) fits in i32, so the sign-extended index lanes are
        // non-negative and `stamps[c]` and `values[c]` are in-bounds
        // reads; the masked value gather touches only lanes whose stamp
        // matched.
        let idx = _mm_loadu_si128(cols.as_ptr().add(i) as *const __m128i);
        let st = _mm_i32gather_epi32::<4>(stamps.as_ptr() as *const i32, idx);
        let mask =
            _mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_cmpeq_epi32(st, generation_v)));
        let x = _mm256_mask_i32gather_pd::<8>(zero, values.as_ptr(), idx, mask);
        let v = _mm256_loadu_pd(vals.as_ptr().add(i));
        acc_v = _mm256_add_pd(acc_v, _mm256_mul_pd(v, x));
        i += 4;
    }
    let mut acc = [0.0f64; 4];
    _mm256_storeu_pd(acc.as_mut_ptr(), acc_v);
    for j in 0..cols.len() - split {
        let c = cols[split + j] as usize;
        let x = if stamps[c] == generation { values[c] } else { 0.0 };
        acc[j] += vals[split + j] * x;
    }
    (acc[0] + acc[2]) + (acc[1] + acc[3])
}

/// Runs the resolved *wide* arm over slices (the shared tail of both
/// layouts' wide paths).
#[inline]
pub(crate) fn gather_wide(
    wide: WideDispatch,
    cols: &[Index],
    vals: &[f64],
    buf: &ScatteredColumn,
) -> f64 {
    match wide {
        WideDispatch::Unrolled4 => gather_unrolled4(cols, vals, buf),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: a `WideDispatch::Avx2` token only exists if
        // `GatherKernel::resolve` observed AVX2 on this host, and `cols`
        // comes from a validated matrix over `buf`'s dimension.
        WideDispatch::Avx2 => unsafe { gather_avx2(cols, vals, buf) },
    }
}

impl ResolvedKernel {
    /// Splits the resolution for a given row: `None` means the scalar
    /// gather runs, `Some(wide)` the wide arm. For `Adaptive` this is
    /// where the per-row policy fires.
    #[inline]
    pub(crate) fn arm_for(self, stat: RowStat, buf: &ScatteredColumn) -> Option<WideDispatch> {
        self.arm_for_with(stat, buf, IndexFootprint::Resident)
    }

    /// [`arm_for`](Self::arm_for) with the index's build-time footprint
    /// class steering the adaptive policy (fixed kernels ignore it).
    #[inline]
    pub(crate) fn arm_for_with(
        self,
        stat: RowStat,
        buf: &ScatteredColumn,
        footprint: IndexFootprint,
    ) -> Option<WideDispatch> {
        match self.0 {
            Dispatch::Scalar => None,
            Dispatch::Wide(w) => Some(w),
            Dispatch::Adaptive(w) => adaptive_picks_wide_with(stat, buf, footprint).then_some(w),
        }
    }
}

impl CsrMatrix {
    /// [`row_dot_scattered`](Self::row_dot_scattered) through the kernel
    /// `kernel` resolved for this host. The hot-path entry point: one
    /// enum branch (for `Adaptive`, plus the `O(1)` per-row policy), then
    /// straight into the selected kernel.
    #[inline]
    pub fn row_dot_scattered_with(
        &self,
        kernel: ResolvedKernel,
        r: Index,
        buf: &ScatteredColumn,
    ) -> f64 {
        debug_assert_eq!(buf.dim(), self.ncols());
        let (cols, vals) = self.row(r);
        match kernel.arm_for(row_stat_of(cols), buf) {
            None => gather_scalar_counting(cols, vals, buf).0,
            Some(wide) => gather_wide(wide, cols, vals, buf),
        }
    }

    /// The portable four-accumulator gather over row `r` (see
    /// [`gather_unrolled4`] for the lane/reduction contract).
    pub fn row_dot_unrolled4(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        debug_assert_eq!(buf.dim(), self.ncols());
        let (cols, vals) = self.row(r);
        gather_unrolled4(cols, vals, buf)
    }

    /// The AVX2 gather over row `r` (see [`gather_avx2`]).
    ///
    /// Panics if the host CPU does not report AVX2; resolve
    /// [`GatherKernel::Simd`] and use
    /// [`row_dot_scattered_with`](Self::row_dot_scattered_with) to get a
    /// typed error instead.
    #[cfg(target_arch = "x86_64")]
    pub fn row_dot_avx2(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "row_dot_avx2 called on a host without AVX2"
        );
        debug_assert_eq!(buf.dim(), self.ncols());
        let (cols, vals) = self.row(r);
        // SAFETY: just checked the required target feature; `cols` holds
        // validated in-bounds indices for `buf`'s dimension.
        unsafe { gather_avx2(cols, vals, buf) }
    }
}

/// `O(1)` row stats straight from a decoded (sorted) column slice — what
/// the table-less flat path feeds the policy.
#[inline]
pub(crate) fn row_stat_of(cols: &[Index]) -> RowStat {
    match (cols.first(), cols.last()) {
        (Some(&first), Some(&last)) => RowStat { nnz: cols.len() as u32, first, last },
        _ => RowStat::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CscMatrix;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trips = Vec::new();
        for r in 0..nrows as Index {
            for c in 0..ncols as Index {
                if rng.gen_bool(density) {
                    trips.push((r, c, rng.gen_range(-2.0..2.0)));
                }
            }
        }
        CsrMatrix::from_csc(&CscMatrix::from_triplets(nrows, ncols, &trips).unwrap())
    }

    fn random_sparse_vec(n: usize, density: f64, seed: u64) -> (Vec<Index>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        for i in 0..n as Index {
            if rng.gen_bool(density) {
                idx.push(i);
                val.push(rng.gen_range(-1.0..1.0));
            }
        }
        (idx, val)
    }

    /// Every kernel the host can run, with the reference first.
    fn host_kernels() -> Vec<ResolvedKernel> {
        let mut kernels = vec![
            GatherKernel::Scalar.resolve().unwrap(),
            GatherKernel::Unrolled4.resolve().unwrap(),
        ];
        if let Ok(simd) = GatherKernel::Simd.resolve() {
            kernels.push(simd);
        }
        kernels.push(GatherKernel::Auto.resolve().unwrap());
        kernels.push(GatherKernel::Adaptive.resolve().unwrap());
        kernels
    }

    #[test]
    fn kernels_agree_within_tolerance_and_unrolled_matches_simd_bitwise() {
        for seed in 0..12u64 {
            // Row lengths sweep every tail residue (len % 4 ∈ {0,1,2,3})
            // because density is random per row.
            let m = random_csr(24, 53, 0.35, seed);
            let (idx, val) = random_sparse_vec(53, 0.4, seed + 99);
            let mut buf = ScatteredColumn::new(53);
            buf.load(&idx, &val);
            for r in 0..24 as Index {
                let reference = m.row_dot_scattered(r, &buf);
                let unrolled = m.row_dot_unrolled4(r, &buf);
                assert!(
                    (reference - unrolled).abs() <= 1e-12 * reference.abs().max(1.0),
                    "seed {seed} row {r}: scalar {reference} vs unrolled {unrolled}"
                );
                if let Ok(simd) = GatherKernel::Simd.resolve() {
                    let vec = m.row_dot_scattered_with(simd, r, &buf);
                    assert_eq!(
                        unrolled.to_bits(),
                        vec.to_bits(),
                        "seed {seed} row {r}: unrolled {unrolled} vs simd {vec} not bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn every_tail_length_is_exact() {
        // Deterministic rows of length 0..=9 against a fully-loaded buffer:
        // both wide kernels must equal the exact (rational) dot product.
        for len in 0..10usize {
            let trips: Vec<(Index, Index, f64)> =
                (0..len).map(|c| (0, c as Index, (c + 1) as f64 * 0.25)).collect();
            let m = CsrMatrix::from_csc(&CscMatrix::from_triplets(1, 10, &trips).unwrap());
            let idx: Vec<Index> = (0..10).collect();
            let val: Vec<f64> = (0..10).map(|i| (i as f64) - 4.0).collect();
            let mut buf = ScatteredColumn::new(10);
            buf.load(&idx, &val);
            let exact: f64 =
                (0..len).map(|c| (c + 1) as f64 * 0.25 * ((c as f64) - 4.0)).sum();
            for kernel in host_kernels() {
                let got = m.row_dot_scattered_with(kernel, 0, &buf);
                assert!(
                    (got - exact).abs() < 1e-12,
                    "len {len} kernel {}: {got} vs {exact}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn unmatched_positions_contribute_nothing() {
        // A row whose columns are entirely outside the loaded vector: all
        // kernels must return exactly 0.0 (the wide kernels' explicit
        // `value × 0.0` lanes included), even with negative row values.
        let trips: Vec<(Index, Index, f64)> =
            (0..7).map(|c| (0, c as Index, -1.5 * (c + 1) as f64)).collect();
        let m = CsrMatrix::from_csc(&CscMatrix::from_triplets(1, 12, &trips).unwrap());
        let mut buf = ScatteredColumn::new(12);
        buf.load(&[9, 11], &[3.0, -4.0]);
        for kernel in host_kernels() {
            let got = m.row_dot_scattered_with(kernel, 0, &buf);
            assert_eq!(got, 0.0, "kernel {}", kernel.name());
        }
    }

    #[test]
    fn kernels_respect_epoch_rollover() {
        let m = random_csr(8, 16, 0.5, 5);
        let mut buf = ScatteredColumn::new(16);
        let all: Vec<Index> = (0..16).collect();
        buf.force_epoch(u32::MAX - 1);
        buf.load(&all, &vec![1.0; 16]); // generation becomes u32::MAX
        let (idx, val) = random_sparse_vec(16, 0.3, 6);
        buf.load(&idx, &val); // wraps: stamps cleared
        for kernel in host_kernels() {
            for r in 0..8 as Index {
                let want = m.row_dot_sparse(r, &idx, &val);
                let got = m.row_dot_scattered_with(kernel, r, &buf);
                assert!(
                    (got - want).abs() < 1e-12,
                    "kernel {} row {r}: {got} vs {want} after rollover",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn selector_parsing_and_names() {
        for kernel in GatherKernel::ALL {
            assert_eq!(kernel.name().parse::<GatherKernel>().unwrap(), kernel);
        }
        assert_eq!("unrolled4".parse::<GatherKernel>().unwrap(), GatherKernel::Unrolled4);
        match "neon-but-misspelled".parse::<GatherKernel>() {
            Err(SparseError::UnsupportedKernel { requested, .. }) => {
                assert_eq!(requested, "neon-but-misspelled");
            }
            other => panic!("expected UnsupportedKernel, got {other:?}"),
        }
    }

    #[test]
    fn resolution_is_typed_and_auto_always_succeeds() {
        assert_eq!(GatherKernel::Scalar.resolve().unwrap().name(), "scalar");
        assert_eq!(GatherKernel::Unrolled4.resolve().unwrap().name(), "unrolled");
        let auto = GatherKernel::Auto.resolve().expect("Auto must resolve on every host");
        let adaptive =
            GatherKernel::Adaptive.resolve().expect("Adaptive must resolve on every host");
        assert!(adaptive.is_adaptive());
        match GatherKernel::Simd.resolve() {
            // Where SIMD resolves, Auto and Adaptive's wide arm must have
            // picked it up too.
            Ok(simd) => {
                assert!(simd.is_simd());
                assert_eq!(auto, simd, "Auto must prefer the vector kernel when available");
                assert_eq!(adaptive.name(), "adaptive(avx2)");
                assert!(adaptive.is_simd());
            }
            // Where it does not, the error is typed and both fell back.
            Err(SparseError::UnsupportedKernel { requested, reason }) => {
                assert_eq!(requested, "simd");
                assert!(!reason.is_empty());
                assert_eq!(auto.name(), "unrolled");
                assert_eq!(adaptive.name(), "adaptive(unrolled)");
            }
            Err(other) => panic!("expected UnsupportedKernel, got {other:?}"),
        }
    }

    /// The adaptive policy is a pure function of row stats and the loaded
    /// column: no host feature, cache size or clock is consulted, so these
    /// fixed inputs must map to these fixed outputs on every machine.
    #[test]
    fn adaptive_policy_is_deterministic_and_host_free() {
        let n = 4096usize;
        let mut column = ScatteredColumn::new(n);
        // A dense clump: positions 0..512 all loaded.
        let idx: Vec<Index> = (0..512).collect();
        column.load(&idx, &vec![1.0; 512]);

        // A big row confined to the dense clump: hit-dominated → wide.
        let hot = RowStat { nnz: 256, first: 0, last: 511 };
        assert!(adaptive_picks_wide(hot, &column));
        // A big row over a disjoint region: zero predicted hits → scalar.
        let cold = RowStat { nnz: 256, first: 2048, last: 4095 };
        assert!(!adaptive_picks_wide(cold, &column));
        // A tiny row never goes wide, however hot the column.
        let tiny = RowStat { nnz: ADAPTIVE_MIN_WIDE_NNZ - 1, first: 0, last: 511 };
        assert!(!adaptive_picks_wide(tiny, &column));
        // An empty column keeps everything scalar.
        column.load(&[], &[]);
        assert!(!adaptive_picks_wide(hot, &column));

        // Repeatability: the same inputs give the same answer every time
        // (the function closes over nothing mutable).
        let mut column = ScatteredColumn::new(n);
        column.load(&idx, &vec![1.0; 512]);
        for _ in 0..3 {
            assert!(adaptive_picks_wide(hot, &column));
            assert!(!adaptive_picks_wide(cold, &column));
        }
    }

    /// The footprint term is deterministic and layered on the same pure
    /// policy: `Resident` is exactly the classic predicate, `Dram` only
    /// raises the hit-rate bar, and classification keys off value bytes
    /// (layout-invariant) at a fixed machine-independent boundary.
    #[test]
    fn footprint_term_is_deterministic_and_only_tightens() {
        let n = 4096usize;
        let mut column = ScatteredColumn::new(n);
        let idx: Vec<Index> = (0..512).collect();
        column.load(&idx, &vec![1.0; 512]);

        let hot = RowStat { nnz: 256, first: 0, last: 511 };
        let cold = RowStat { nnz: 256, first: 2048, last: 4095 };
        // Resident == the classic policy, bit for bit.
        for stat in [hot, cold] {
            assert_eq!(
                adaptive_picks_wide_with(stat, &column, IndexFootprint::Resident),
                adaptive_picks_wide(stat, &column)
            );
        }
        // Dram never widens the wide set: any row Dram sends wide,
        // Resident sends wide too.
        for nnz in [16u32, 64, 256] {
            for last in [31u32, 255, 511, 1023] {
                let stat = RowStat { nnz, first: 0, last };
                let dram = adaptive_picks_wide_with(stat, &column, IndexFootprint::Dram);
                let resident = adaptive_picks_wide_with(stat, &column, IndexFootprint::Resident);
                assert!(!dram || resident, "nnz {nnz} last {last}");
            }
        }
        // A fully-loaded bucket clears even the Dram bar...
        let mut dense_col = ScatteredColumn::new(n);
        let all: Vec<Index> = (0..1024).collect();
        dense_col.load(&all, &vec![1.0; 1024]);
        let full = RowStat { nnz: 256, first: 0, last: 1023 };
        assert!(adaptive_picks_wide_with(full, &dense_col, IndexFootprint::Dram));
        // ...while the half-loaded bucket (hit rate 0.5) passes exactly
        // the Resident bar and fails the Dram one.
        let half = RowStat { nnz: 256, first: 0, last: 511 };
        assert!(adaptive_picks_wide_with(half, &column, IndexFootprint::Resident));
        assert!(!adaptive_picks_wide_with(half, &column, IndexFootprint::Dram));

        // Classification boundary is exact and value-byte keyed.
        assert_eq!(IndexFootprint::classify(0), IndexFootprint::Resident);
        assert_eq!(
            IndexFootprint::classify(ADAPTIVE_RESIDENT_VALUE_BYTES),
            IndexFootprint::Resident
        );
        assert_eq!(
            IndexFootprint::classify(ADAPTIVE_RESIDENT_VALUE_BYTES + 1),
            IndexFootprint::Dram
        );
    }

    /// Adaptive whole-row results equal whichever arm the policy picked —
    /// never a third arithmetic.
    #[test]
    fn adaptive_rows_match_their_selected_arm() {
        let m = random_csr(30, 64, 0.5, 11);
        let (idx, val) = random_sparse_vec(64, 0.6, 12);
        let mut buf = ScatteredColumn::new(64);
        buf.load(&idx, &val);
        let adaptive = GatherKernel::Adaptive.resolve().unwrap();
        for r in 0..30 as Index {
            let got = m.row_dot_scattered_with(adaptive, r, &buf);
            let (cols, _) = m.row(r);
            let expect = if adaptive_picks_wide(row_stat_of(cols), &buf) {
                m.row_dot_unrolled4(r, &buf) // bit-identical to the AVX2 arm
            } else {
                m.row_dot_scattered(r, &buf)
            };
            assert_eq!(got.to_bits(), expect.to_bits(), "row {r}");
        }
    }
}
