//! RWR-specific matrix assembly.
//!
//! Builds the column-normalised transition matrix `A` of Section 3 of the
//! paper (`A_uv` = probability that the walk moves to `u` given it is at
//! `v`, i.e. column `v` holds the normalised out-edges of `v`) and the
//! system matrix `W = I − (1−c)A` of Equation (2).

use crate::{CscMatrix, Index, Result, SparseError};
use kdash_graph::CsrGraph;

/// How to treat *dangling* nodes (no out-edges), whose transition column
/// would otherwise be empty and make `A` sub-stochastic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DanglingPolicy {
    /// Leave the column empty. The walk's un-restarted mass at a dangling
    /// node vanishes; `Σ_u p_u` may be < 1 but every K-dash bound still
    /// holds (they only need `Σ p ≤ 1`) and `W` stays non-singular.
    #[default]
    Keep,
    /// Give dangling nodes a self-loop (`A_vv = 1`): the walker waits in
    /// place until it restarts. Preserves column stochasticity.
    SelfLoop,
}

/// Builds the column-normalised transition matrix of a graph.
///
/// Column `v` contains `weight(v→u) / Σ_t weight(v→t)` at row `u`. Row
/// indices are sorted because the graph's adjacency rows are sorted.
pub fn transition_matrix(graph: &CsrGraph, policy: DanglingPolicy) -> CscMatrix {
    let n = graph.num_nodes();
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<Index> = Vec::with_capacity(graph.num_edges());
    let mut values: Vec<f64> = Vec::with_capacity(graph.num_edges());
    for v in 0..n as Index {
        let sum = graph.out_weight_sum(v);
        if sum > 0.0 {
            for (t, w) in graph.out_edges(v) {
                row_idx.push(t);
                values.push(w / sum);
            }
        } else if policy == DanglingPolicy::SelfLoop {
            row_idx.push(v);
            values.push(1.0);
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
        .expect("normalised adjacency is structurally valid")
}

/// Validates a restart probability: must be finite and strictly inside
/// `(0, 1)`.
pub fn validate_restart(c: f64) -> Result<f64> {
    if c.is_finite() && c > 0.0 && c < 1.0 {
        Ok(c)
    } else {
        Err(SparseError::InvalidRestartProbability(c))
    }
}

/// Builds `W = I − (1−c) A` (Equation (2) of the paper). `W` is strictly
/// column diagonally dominant for any column-substochastic `A`, which is
/// what makes pivot-free LU safe.
pub fn w_matrix(a: &CscMatrix, c: f64) -> Result<CscMatrix> {
    validate_restart(c)?;
    let n = a.nrows();
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
    }
    let damp = 1.0 - c;
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<Index> = Vec::with_capacity(a.nnz() + n);
    let mut values: Vec<f64> = Vec::with_capacity(a.nnz() + n);
    for v in 0..n as Index {
        let (rows, vals) = a.col(v);
        let mut diag_emitted = false;
        for (&r, &val) in rows.iter().zip(vals) {
            match r.cmp(&v) {
                std::cmp::Ordering::Less => {
                    row_idx.push(r);
                    values.push(-damp * val);
                }
                std::cmp::Ordering::Equal => {
                    row_idx.push(v);
                    values.push(1.0 - damp * val);
                    diag_emitted = true;
                }
                std::cmp::Ordering::Greater => {
                    if !diag_emitted {
                        row_idx.push(v);
                        values.push(1.0);
                        diag_emitted = true;
                    }
                    row_idx.push(r);
                    values.push(-damp * val);
                }
            }
        }
        if !diag_emitted {
            row_idx.push(v);
            values.push(1.0);
        }
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
}

/// One RWR power-iteration step: `p_next = (1−c) A p + c e_q`.
/// Shared by the iterative baseline and by exactness tests.
pub fn rwr_step(a: &CscMatrix, c: f64, q: Index, p: &[f64], p_next: &mut [f64]) {
    p_next.fill(0.0);
    a.matvec_add(p, p_next);
    for v in p_next.iter_mut() {
        *v *= 1.0 - c;
    }
    p_next[q as usize] += c;
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;

    fn triangle_graph() -> CsrGraph {
        // 0 -> 1 (w 1), 0 -> 2 (w 3), 1 -> 2, 2 -> 0
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 3.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 0, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn columns_are_normalised() {
        let a = transition_matrix(&triangle_graph(), DanglingPolicy::Keep);
        assert_eq!(a.get(1, 0), Some(0.25));
        assert_eq!(a.get(2, 0), Some(0.75));
        assert_eq!(a.get(2, 1), Some(1.0));
        assert_eq!(a.get(0, 2), Some(1.0));
        // every column sums to 1
        for v in 0..3 {
            let (_, vals) = a.col(v);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn dangling_policies() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0); // node 1 dangles
        let g = b.build().unwrap();
        let keep = transition_matrix(&g, DanglingPolicy::Keep);
        assert_eq!(keep.col(1).0.len(), 0);
        let looped = transition_matrix(&g, DanglingPolicy::SelfLoop);
        assert_eq!(looped.get(1, 1), Some(1.0));
    }

    #[test]
    fn w_has_unit_diagonal_shift() {
        let a = transition_matrix(&triangle_graph(), DanglingPolicy::Keep);
        let c = 0.95;
        let w = w_matrix(&a, c).unwrap();
        // diagonal = 1 everywhere (no self loops in the graph)
        for v in 0..3 {
            assert_eq!(w.get(v, v), Some(1.0));
        }
        assert!((w.get(1, 0).unwrap() - (-(1.0 - c) * 0.25)).abs() < 1e-15);
        // strict column diagonal dominance
        for v in 0..3 as Index {
            let (rows, vals) = w.col(v);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&r, &x) in rows.iter().zip(vals) {
                if r == v {
                    diag = x.abs();
                } else {
                    off += x.abs();
                }
            }
            assert!(diag > off, "column {v} not dominant: {diag} <= {off}");
        }
    }

    #[test]
    fn w_handles_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        let g = b.build().unwrap();
        let a = transition_matrix(&g, DanglingPolicy::Keep);
        assert_eq!(a.get(0, 0), Some(0.5));
        let w = w_matrix(&a, 0.9).unwrap();
        assert!((w.get(0, 0).unwrap() - (1.0 - 0.1 * 0.5)).abs() < 1e-15);
    }

    #[test]
    fn invalid_restart_rejected() {
        let a = transition_matrix(&triangle_graph(), DanglingPolicy::Keep);
        for bad in [0.0, 1.0, -0.5, 1.5, f64::NAN] {
            assert!(w_matrix(&a, bad).is_err(), "c = {bad} must be rejected");
        }
    }

    #[test]
    fn rwr_step_conserves_mass_on_stochastic_a() {
        let a = transition_matrix(&triangle_graph(), DanglingPolicy::Keep);
        let c = 0.3;
        let p = vec![0.5, 0.25, 0.25];
        let mut next = vec![0.0; 3];
        rwr_step(&a, c, 0, &p, &mut next);
        let s: f64 = next.iter().sum();
        assert!((s - 1.0).abs() < 1e-15, "mass {s}");
    }

    #[test]
    fn fixed_point_matches_linear_system() {
        // Iterate to convergence and compare against W p = c e_q.
        let g = triangle_graph();
        let a = transition_matrix(&g, DanglingPolicy::Keep);
        let c = 0.4;
        let q: Index = 0;
        let mut p = vec![0.0; 3];
        p[q as usize] = 1.0;
        let mut next = vec![0.0; 3];
        for _ in 0..500 {
            rwr_step(&a, c, q, &p, &mut next);
            std::mem::swap(&mut p, &mut next);
        }
        let w = w_matrix(&a, c).unwrap();
        let recon = w.matvec(&p);
        for (i, r) in recon.iter().enumerate() {
            let expect = if i == q as usize { c } else { 0.0 };
            assert!((r - expect).abs() < 1e-12, "residual {r} at {i}");
        }
    }
}
