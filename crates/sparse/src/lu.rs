//! Left-looking sparse LU factorisation (Gilbert–Peierls).
//!
//! Factors `W = L · U` with unit-diagonal `L` (Doolittle form), matching the
//! paper's Equations (6)–(7): each column of `L` and `U` is computed from
//! the columns to its left. The numeric core of column `j` is a sparse
//! triangular solve `L(0..j, 0..j) x = W(:, j)` whose pattern comes from a
//! DFS over the partially-built `L` — total cost `O(flops)`.
//!
//! No pivoting is performed. The intended input `W = I − (1−c)A` with a
//! column-substochastic `A` and `0 < c < 1` is strictly column diagonally
//! dominant, for which LU without pivoting is well defined and numerically
//! stable; a zero pivot on other inputs surfaces as
//! [`SparseError::SingularPivot`].
//!
//! ## The column-dependency DAG
//!
//! The left-looking formulation makes the data flow explicit: factor
//! column `j` is produced from `W(:, j)` and the `L` columns in the
//! Gilbert–Peierls reach of `pattern(W(:, j))` — nothing else (`U`
//! columns are outputs; the solve never reads them back). Every pattern
//! edge `k → i` of `L` runs strictly upward (`i > k`), so the columns
//! form a DAG ordered by column number, and a column's dependency cone
//! lies entirely to its left. Two machines are built on that DAG here:
//!
//! * **Parallel factorisation** ([`sparse_lu_with`]) — columns are
//!   independent except through the DAG, so workers claim chunks of
//!   columns in ascending order and a per-column provider *waits* on the
//!   not-yet-solved dependencies. The globally lowest unfinished column
//!   always has all dependencies finished and an owner working on it, so
//!   the schedule is deadlock-free; and since each column's bits are a
//!   function of its inputs alone, the result is **bit-identical at any
//!   thread count**.
//! * **Incremental refactorisation** ([`refactor_columns`]) — a column
//!   whose `W` column is untouched and whose reach contains no column
//!   with bitwise-changed `L` reads only bit-identical inputs, so its
//!   output is provably bit-identical and is kept. Processing columns in
//!   ascending order, the exact recompute set falls out of a taint
//!   propagation: when a recomputed column's `L` part changes, a backward
//!   BFS over the old `L`'s row-pattern adjacency taints every ancestor
//!   (column that can reach it); a later column is recomputed iff its `W`
//!   column is dirty or its `W` pattern holds a tainted node. Any path
//!   from a seed to a *first*-changed column runs through unchanged
//!   columns only, whose old and new patterns coincide — so the old
//!   adjacency covers every path that matters, and stale edges from
//!   changed columns can only over-taint (extra work, never a wrong
//!   bit). Note the popular "column `j` depends on `k` iff
//!   `U(k, j) ≠ 0`" formulation is *not* used for the dependency test:
//!   exact numeric cancellation can drop an entry from the stored `U`
//!   while the symbolic reach still includes it, and the symbolic reach
//!   is what bounds the inputs.

use crate::{
    ColumnUpdate, CscMatrix, Index, InvertOptions, Result, SolveWorkspace, SparseError, Triangle,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The two triangular factors of `W = L · U`.
///
/// * `l` — unit lower triangular, **diagonal not stored** (all entries are
///   strictly below the diagonal).
/// * `u` — upper triangular, diagonal stored (last entry of each column).
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Strictly-lower part of the unit lower triangular factor.
    pub l: CscMatrix,
    /// Upper triangular factor including the diagonal.
    pub u: CscMatrix,
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.u.ncols()
    }

    /// Combined stored entries of both factors.
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// Dense solve `W x = b` via forward then backward substitution.
    /// `O(nnz(L) + nnz(U))`.
    pub fn solve_dense(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(SparseError::Malformed(format!(
                "rhs length {} does not match dimension {n}",
                b.len()
            )));
        }
        let mut x = b.to_vec();
        // Forward: L y = b, unit diagonal, column-oriented.
        for j in 0..n as Index {
            let xj = x[j as usize];
            if xj != 0.0 {
                let (rows, vals) = self.l.col(j);
                for (&i, &v) in rows.iter().zip(vals) {
                    x[i as usize] -= v * xj;
                }
            }
        }
        // Backward: U x = y.
        for j in (0..n as Index).rev() {
            let (rows, vals) = self.u.col(j);
            let diag = match rows.last() {
                Some(&r) if r == j => *vals.last().expect("parallel arrays"),
                _ => return Err(SparseError::SingularPivot { column: j as usize, value: 0.0 }),
            };
            let xj = x[j as usize] / diag;
            x[j as usize] = xj;
            if xj != 0.0 {
                for (&i, &v) in rows[..rows.len() - 1].iter().zip(&vals[..rows.len() - 1]) {
                    x[i as usize] -= v * xj;
                }
            }
        }
        Ok(x)
    }

    /// Sparse solve `W x = e_q` using two Gilbert–Peierls solves. This is
    /// the "no stored inverses" alternative benchmarked by the
    /// `ablation_solve_vs_inverse` bench; it returns the sorted sparse
    /// solution.
    pub fn solve_unit_sparse(
        &self,
        ws: &mut SolveWorkspace,
        q: Index,
    ) -> Result<(Vec<Index>, Vec<f64>)> {
        let (mut yi, mut yv) = (Vec::new(), Vec::new());
        ws.solve_unit(&self.l, Triangle::Lower, true, q, &mut yi, &mut yv)?;
        let (mut xi, mut xv) = (Vec::new(), Vec::new());
        ws.solve(&self.u, Triangle::Upper, false, &yi, &yv, &mut xi, &mut xv)?;
        Ok((xi, xv))
    }
}

/// One solved factor column: the `U(:, j)` entries (sorted, diagonal
/// last) and the strictly-lower `L(:, j)` entries (sorted, already
/// divided by the pivot). The unit of work every factorisation driver in
/// this module produces and consumes.
#[derive(Debug, Clone)]
struct FactorColumn {
    u_rows: Vec<Index>,
    u_vals: Vec<f64>,
    l_rows: Vec<Index>,
    l_vals: Vec<f64>,
}

/// Per-worker scratch for the Gilbert–Peierls per-column solve. One
/// allocation set reused across every column a driver solves.
struct LuScratch {
    stamp: Vec<u32>,
    cur: u32,
    x: Vec<f64>,
    topo: Vec<Index>,
    stack: Vec<(Index, usize)>,
    col_scratch: Vec<(Index, f64)>,
}

impl LuScratch {
    fn new(n: usize) -> LuScratch {
        LuScratch {
            stamp: vec![0u32; n],
            cur: 0,
            x: vec![0.0f64; n],
            topo: Vec::new(),
            stack: Vec::new(),
            col_scratch: Vec::new(),
        }
    }
}

/// Source of already-solved `L` columns for [`solve_factor_column`]: the
/// growing result set (sequential build), a hybrid of old factors and
/// recomputed columns (incremental refactorisation), or cross-thread
/// slots that wait on in-flight dependencies (parallel build). Fallible
/// so the parallel provider can abort a poisoned run.
trait LColumns {
    /// Strictly-lower pattern and values of factor column `k` — only ever
    /// requested for `k` strictly left of the column being solved.
    fn col(&self, k: Index) -> Result<(&[Index], &[f64])>;
}

/// Sequential full factorisation: every column `k < j` is already in the
/// result vector.
struct SolvedView<'a>(&'a [FactorColumn]);

impl LColumns for SolvedView<'_> {
    fn col(&self, k: Index) -> Result<(&[Index], &[f64])> {
        let c = &self.0[k as usize];
        Ok((&c.l_rows, &c.l_vals))
    }
}

/// Incremental refactorisation: recomputed columns where available, the
/// old factor columns everywhere else (legal because non-recomputed
/// columns are provably bit-identical to a full rebuild).
struct HybridView<'a> {
    old_l: &'a CscMatrix,
    fresh: &'a [Option<FactorColumn>],
}

impl LColumns for HybridView<'_> {
    fn col(&self, k: Index) -> Result<(&[Index], &[f64])> {
        match &self.fresh[k as usize] {
            Some(c) => Ok((&c.l_rows, &c.l_vals)),
            None => Ok(self.old_l.col(k)),
        }
    }
}

/// Sentinel in the column→slot map for "not scheduled for recomputation;
/// read the old factors".
const NOT_SCHEDULED: u32 = u32::MAX;

/// Parallel provider: dependencies still in flight are awaited on their
/// [`OnceLock`] slot. `old` is `None` for a full build (slot index ==
/// column index) and `Some((old_l, map))` for a parallel refactor, where
/// unscheduled columns fall back to the old factors.
struct ParallelView<'a> {
    old: Option<(&'a CscMatrix, &'a [u32])>,
    slots: &'a [OnceLock<FactorColumn>],
    abort: &'a AtomicBool,
}

impl LColumns for ParallelView<'_> {
    fn col(&self, k: Index) -> Result<(&[Index], &[f64])> {
        let slot = match self.old {
            None => &self.slots[k as usize],
            Some((old_l, map)) => {
                let s = map[k as usize];
                if s == NOT_SCHEDULED {
                    return Ok(old_l.col(k));
                }
                &self.slots[s as usize]
            }
        };
        loop {
            if let Some(c) = slot.get() {
                return Ok((&c.l_rows, &c.l_vals));
            }
            if self.abort.load(Ordering::Acquire) {
                // Another worker hit a real error; unwind quietly — the
                // driver re-derives the deterministic error sequentially.
                return Err(SparseError::Malformed(
                    "parallel factorisation aborted".into(),
                ));
            }
            std::thread::yield_now();
        }
    }
}

/// The Gilbert–Peierls solve for one factor column: symbolic DFS over
/// the `L` columns left of `j`, sparse numeric elimination in reverse
/// postorder, pivot check, then emit `U(:, j)` (sorted, diagonal last)
/// and `L(:, j)` (sorted, pivot-scaled). Bit-for-bit the same arithmetic
/// in the same order regardless of which provider backs `l` — the
/// invariant every driver in this module leans on.
fn solve_factor_column(
    j: Index,
    w_col: (&[Index], &[f64]),
    l: &impl LColumns,
    scratch: &mut LuScratch,
) -> Result<FactorColumn> {
    let LuScratch { stamp, cur, x, topo, stack, col_scratch } = scratch;
    *cur += 1;
    if *cur == 0 {
        // u32 stamp wrapped (needs 2^32 solves on one scratch): reset.
        stamp.iter_mut().for_each(|s| *s = 0);
        *cur = 1;
    }
    let cur = *cur;
    topo.clear();
    stack.clear();
    let (b_rows, b_vals) = w_col;

    // Symbolic: reach of pattern(W(:,j)) over the partially built L.
    // Only columns < j exist in L, so nodes >= j have no children.
    for &r in b_rows {
        if stamp[r as usize] == cur {
            continue;
        }
        stamp[r as usize] = cur;
        x[r as usize] = 0.0;
        stack.push((r, 0));
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let children: &[Index] = if node < j { l.col(node)?.0 } else { &[] };
            if *cursor < children.len() {
                let child = children[*cursor];
                *cursor += 1;
                if stamp[child as usize] != cur {
                    stamp[child as usize] = cur;
                    x[child as usize] = 0.0;
                    stack.push((child, 0));
                }
            } else {
                topo.push(node);
                stack.pop();
            }
        }
    }
    for (&r, &v) in b_rows.iter().zip(b_vals) {
        x[r as usize] = v;
    }

    // Numeric: reverse postorder = topological order of dependencies.
    for pos in (0..topo.len()).rev() {
        let r = topo[pos];
        if r >= j {
            continue; // rows at or below the pivot only accumulate
        }
        let xr = x[r as usize];
        if xr != 0.0 {
            let (rows, vals) = l.col(r)?;
            for (i, v) in rows.iter().zip(vals) {
                x[*i as usize] -= v * xr;
            }
        }
    }

    // Pivot.
    let pivot = if stamp[j as usize] == cur { x[j as usize] } else { 0.0 };
    if pivot == 0.0 || !pivot.is_finite() {
        return Err(SparseError::SingularPivot { column: j as usize, value: pivot });
    }

    // Emit U(:, j): rows < j, sorted, then the diagonal last.
    col_scratch.clear();
    for &r in topo.iter() {
        if r < j {
            let v = x[r as usize];
            if v != 0.0 {
                col_scratch.push((r, v));
            }
        }
    }
    col_scratch.sort_unstable_by_key(|&(r, _)| r);
    let mut u_rows = Vec::with_capacity(col_scratch.len() + 1);
    let mut u_vals = Vec::with_capacity(col_scratch.len() + 1);
    for &(r, v) in col_scratch.iter() {
        u_rows.push(r);
        u_vals.push(v);
    }
    u_rows.push(j);
    u_vals.push(pivot);

    // Emit L(:, j): rows > j, divided by the pivot, sorted.
    col_scratch.clear();
    for &r in topo.iter() {
        if r > j {
            let v = x[r as usize];
            if v != 0.0 {
                col_scratch.push((r, v / pivot));
            }
        }
    }
    col_scratch.sort_unstable_by_key(|&(r, _)| r);
    let mut l_rows = Vec::with_capacity(col_scratch.len());
    let mut l_vals = Vec::with_capacity(col_scratch.len());
    for &(r, v) in col_scratch.iter() {
        l_rows.push(r);
        l_vals.push(v);
    }

    Ok(FactorColumn { u_rows, u_vals, l_rows, l_vals })
}

/// Concatenates solved columns into the flat CSC factor pair.
fn assemble(n: usize, cols: Vec<FactorColumn>) -> Result<LuFactors> {
    let mut l_ptr: Vec<usize> = Vec::with_capacity(n + 1);
    let mut u_ptr: Vec<usize> = Vec::with_capacity(n + 1);
    l_ptr.push(0);
    u_ptr.push(0);
    let l_nnz: usize = cols.iter().map(|c| c.l_rows.len()).sum();
    let u_nnz: usize = cols.iter().map(|c| c.u_rows.len()).sum();
    let mut l_rows: Vec<Index> = Vec::with_capacity(l_nnz);
    let mut l_vals: Vec<f64> = Vec::with_capacity(l_nnz);
    let mut u_rows: Vec<Index> = Vec::with_capacity(u_nnz);
    let mut u_vals: Vec<f64> = Vec::with_capacity(u_nnz);
    for c in &cols {
        l_rows.extend_from_slice(&c.l_rows);
        l_vals.extend_from_slice(&c.l_vals);
        l_ptr.push(l_rows.len());
        u_rows.extend_from_slice(&c.u_rows);
        u_vals.extend_from_slice(&c.u_vals);
        u_ptr.push(u_rows.len());
    }
    let l = CscMatrix::from_raw_parts(n, n, l_ptr, l_rows, l_vals)?;
    let u = CscMatrix::from_raw_parts(n, n, u_ptr, u_rows, u_vals)?;
    debug_assert!(l.is_strictly_lower());
    debug_assert!(u.is_upper());
    Ok(LuFactors { l, u })
}

/// Sequential driver: columns left to right, each reading the columns
/// already solved.
fn solve_all_sequential(w: &CscMatrix) -> Result<Vec<FactorColumn>> {
    let n = w.nrows();
    let mut cols: Vec<FactorColumn> = Vec::with_capacity(n);
    let mut scratch = LuScratch::new(n);
    for j in 0..n as Index {
        let col = solve_factor_column(j, w.col(j), &SolvedView(&cols), &mut scratch)?;
        cols.push(col);
    }
    Ok(cols)
}

/// Parallel driver: solves `columns` (ascending) of the factorisation of
/// `w`, result `i` landing in slot `i`. `old` supplies the unscheduled
/// columns for a refactor, `None` for a full build (then `columns` must
/// be `0..n`). Returns `None` when any column's solve failed — the
/// caller re-runs sequentially so the reported error (lowest failing
/// column) is deterministic at every thread count.
fn solve_columns_parallel(
    w: &CscMatrix,
    columns: &[Index],
    old: Option<(&CscMatrix, &[u32])>,
    threads: usize,
) -> Option<Vec<FactorColumn>> {
    let n = w.nrows();
    let m = columns.len();
    let slots: Vec<OnceLock<FactorColumn>> = (0..m).map(|_| OnceLock::new()).collect();
    let abort = AtomicBool::new(false);
    let cursor = AtomicUsize::new(0);
    let chunk = crate::inverse::claim_chunk(m, threads);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = LuScratch::new(n);
                let view = ParallelView { old, slots: &slots, abort: &abort };
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= m {
                        break;
                    }
                    // Chunks are processed in ascending column order, so
                    // the globally lowest unfinished column always has an
                    // owner actively solving it — no deadlock.
                    for (i, &j) in columns.iter().enumerate().take((start + chunk).min(m)).skip(start)
                    {
                        if abort.load(Ordering::Acquire) {
                            return;
                        }
                        match solve_factor_column(j, w.col(j), &view, &mut scratch) {
                            Ok(c) => {
                                let _ = slots[i].set(c);
                            }
                            Err(_) => {
                                abort.store(true, Ordering::Release);
                                cursor.fetch_max(m, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                }
            });
        }
    });
    if abort.load(Ordering::Acquire) {
        return None;
    }
    slots.into_iter().map(OnceLock::into_inner).collect()
}

/// Factors a square matrix with the left-looking sparse LU algorithm
/// (sequentially, on the calling thread).
pub fn sparse_lu(w: &CscMatrix) -> Result<LuFactors> {
    sparse_lu_with(w, InvertOptions::sequential())
}

/// [`sparse_lu`] with an explicit worker count: the columns fan out over
/// the same work-stealing chunk cursor as the inversion stage
/// ([`crate::invert_lower_unit_with`]), with per-column dependencies
/// awaited through the column DAG (see the module docs). Output is
/// **bit-identical at any thread count**; a singular input reports the
/// same lowest failing column at any thread count.
pub fn sparse_lu_with(w: &CscMatrix, options: InvertOptions) -> Result<LuFactors> {
    let n = w.nrows();
    if w.nrows() != w.ncols() {
        return Err(SparseError::NotSquare { nrows: w.nrows(), ncols: w.ncols() });
    }
    let threads = options.resolved_threads(n);
    if threads <= 1 {
        return assemble(n, solve_all_sequential(w)?);
    }
    let columns: Vec<Index> = (0..n as Index).collect();
    match solve_columns_parallel(w, &columns, None, threads) {
        Some(cols) => assemble(n, cols),
        // Some column failed: derive the deterministic (lowest-column)
        // error on the calling thread. Errors are a cold path, so the
        // duplicated work is irrelevant next to determinism.
        None => assemble(n, solve_all_sequential(w)?),
    }
}

/// What an incremental refactorisation did: how much of the factor it
/// recomputed, which columns actually changed (the dirty sets the
/// inverse reach analysis consumes), and where the time went.
#[derive(Debug, Clone, Default)]
pub struct RefactorReport {
    /// Matrix dimension (columns per factor).
    pub dim: usize,
    /// In-bounds distinct dirty `W` columns the caller declared.
    pub dirty_w_columns: usize,
    /// Factor columns re-run through the Gilbert–Peierls solve. On the
    /// sequential path this is the *exact* taint closure; the parallel
    /// path schedules the pattern-only candidate superset
    /// ([`crate::refactor_candidates`]) so it can fan out up front.
    pub recomputed_columns: usize,
    /// Columns of `L` that changed bitwise (sorted ascending).
    pub changed_l_columns: Vec<Index>,
    /// Columns of `U` that changed bitwise (sorted ascending).
    pub changed_u_columns: Vec<Index>,
    /// Reach/taint analysis + bit-diff time (everything except the
    /// solves and the splice).
    pub analysis_time: Duration,
    /// Gilbert–Peierls solve time over the recomputed columns.
    pub solve_time: Duration,
    /// Time splicing the changed columns into the old factors.
    pub splice_time: Duration,
}

impl RefactorReport {
    /// Fraction of factor columns re-run, in `[0, 1]`.
    pub fn recomputed_fraction(&self) -> f64 {
        self.recomputed_columns as f64 / self.dim.max(1) as f64
    }
}

/// Incrementally refactors `w_new = L · U` given the factors of a
/// previous `w_old` that differs from `w_new` only in the `dirty_w`
/// columns: re-runs the per-column solve on exactly the columns whose
/// inputs can differ (the taint closure of the module docs) and splices
/// the changed columns into the old factors. The result is
/// **bit-identical** to `sparse_lu(w_new)` — pinned by
/// `tests/incremental_lu_equivalence.rs` across graph families,
/// orderings and edit classes.
///
/// `dirty_w` must cover every column where `w_new` differs from the
/// matrix `old` factors (extra or out-of-bounds entries are harmless);
/// an incomplete set silently produces stale factors — the same
/// contract as the inverse-side [`crate::inverse_dirty_columns`].
pub fn refactor_columns(
    old: &LuFactors,
    w_new: &CscMatrix,
    dirty_w: &[Index],
) -> Result<(LuFactors, RefactorReport)> {
    refactor_columns_with(old, w_new, dirty_w, InvertOptions::sequential())
}

/// [`refactor_columns`] with an explicit worker count. The parallel path
/// pre-computes the pattern-only candidate superset
/// ([`crate::refactor_candidates`]) so the recompute set is known up
/// front, then fans the candidates out over the column DAG like
/// [`sparse_lu_with`]; recomputed-but-unchanged candidates diff clean
/// and are not spliced, so the factors are still bit-identical to the
/// sequential (exact-taint) path at any thread count — only
/// [`RefactorReport::recomputed_columns`] may be larger.
pub fn refactor_columns_with(
    old: &LuFactors,
    w_new: &CscMatrix,
    dirty_w: &[Index],
    options: InvertOptions,
) -> Result<(LuFactors, RefactorReport)> {
    let n = w_new.nrows();
    if w_new.nrows() != w_new.ncols() {
        return Err(SparseError::NotSquare { nrows: w_new.nrows(), ncols: w_new.ncols() });
    }
    if old.dim() != n || old.l.nrows() != n || old.l.ncols() != n {
        return Err(SparseError::Malformed(format!(
            "refactor of a {n}×{n} matrix against {}×{} factors",
            old.l.nrows(),
            old.u.ncols()
        )));
    }

    let started = Instant::now();
    let mut report = RefactorReport { dim: n, ..Default::default() };
    let mut dirty = vec![false; n];
    for &d in dirty_w {
        if (d as usize) < n && !dirty[d as usize] {
            dirty[d as usize] = true;
            report.dirty_w_columns += 1;
        }
    }
    if report.dirty_w_columns == 0 {
        report.analysis_time = started.elapsed();
        return Ok((old.clone(), report));
    }

    let threads = options.resolved_threads(n);
    let mut fresh: Vec<Option<FactorColumn>> = (0..n).map(|_| None).collect();
    let mut solve_time = Duration::ZERO;

    if threads <= 1 {
        // Exact taint propagation (see the module docs): ascending over
        // the columns, recompute iff dirty-W or a tainted seed, and when
        // the recomputed L part changed bitwise, taint every ancestor via
        // the old L's row-pattern adjacency.
        let (adj_ptr, adj_cols) = crate::reach::pattern_row_adjacency(&old.l);
        let mut taint = vec![false; n];
        let mut bfs: Vec<Index> = Vec::new();
        let mut scratch = LuScratch::new(n);
        for j in 0..n as Index {
            let seeds = w_new.col(j).0;
            let recompute =
                dirty[j as usize] || seeds.iter().any(|&s| (s as usize) < n && taint[s as usize]);
            if !recompute {
                continue;
            }
            report.recomputed_columns += 1;
            let t = Instant::now();
            let col = solve_factor_column(
                j,
                w_new.col(j),
                &HybridView { old_l: &old.l, fresh: &fresh },
                &mut scratch,
            )?;
            solve_time += t.elapsed();
            let l_changed = column_changed(&old.l, j, &col.l_rows, &col.l_vals);
            if column_changed(&old.u, j, &col.u_rows, &col.u_vals) {
                report.changed_u_columns.push(j);
            }
            if l_changed {
                report.changed_l_columns.push(j);
                if !taint[j as usize] {
                    // Ancestors-or-self of a changed column: backward BFS
                    // over the row adjacency (predecessors of v are the
                    // columns whose L holds row v).
                    taint[j as usize] = true;
                    bfs.push(j);
                    while let Some(v) = bfs.pop() {
                        for &k in &adj_cols[adj_ptr[v as usize]..adj_ptr[v as usize + 1]] {
                            if !taint[k as usize] {
                                taint[k as usize] = true;
                                bfs.push(k);
                            }
                        }
                    }
                }
            }
            fresh[j as usize] = Some(col);
        }
    } else {
        // Parallel path: the pattern-only candidate closure is a provable
        // superset of the exact recompute set, so scheduling all of it
        // keeps every input bit-identical to the full build.
        let candidates = crate::reach::refactor_candidates(&old.l, w_new, dirty_w);
        let mut slot_of = vec![NOT_SCHEDULED; n];
        for (i, &c) in candidates.iter().enumerate() {
            slot_of[c as usize] = i as u32;
        }
        report.recomputed_columns = candidates.len();
        let t = Instant::now();
        let cols =
            match solve_columns_parallel(w_new, &candidates, Some((&old.l, &slot_of)), threads) {
                Some(cols) => cols,
                // A candidate failed: re-derive the deterministic error
                // (or, impossibly, the result) on the exact path.
                None => {
                    return refactor_columns_with(old, w_new, dirty_w, InvertOptions::sequential())
                }
            };
        solve_time = t.elapsed();
        for (&j, col) in candidates.iter().zip(cols) {
            if column_changed(&old.l, j, &col.l_rows, &col.l_vals) {
                report.changed_l_columns.push(j);
            }
            if column_changed(&old.u, j, &col.u_rows, &col.u_vals) {
                report.changed_u_columns.push(j);
            }
            fresh[j as usize] = Some(col);
        }
    }

    report.solve_time = solve_time;
    report.analysis_time = started.elapsed().saturating_sub(solve_time);

    // Splice only the bitwise-changed columns into the old factors.
    let t = Instant::now();
    let mut l_updates: Vec<ColumnUpdate> = Vec::with_capacity(report.changed_l_columns.len());
    for &j in &report.changed_l_columns {
        if let Some(c) = fresh[j as usize].as_mut() {
            l_updates.push(ColumnUpdate {
                col: j,
                rows: std::mem::take(&mut c.l_rows),
                vals: std::mem::take(&mut c.l_vals),
            });
        }
    }
    let mut u_updates: Vec<ColumnUpdate> = Vec::with_capacity(report.changed_u_columns.len());
    for &j in &report.changed_u_columns {
        if let Some(c) = fresh[j as usize].as_mut() {
            u_updates.push(ColumnUpdate {
                col: j,
                rows: std::mem::take(&mut c.u_rows),
                vals: std::mem::take(&mut c.u_vals),
            });
        }
    }
    let l = old.l.splice_columns(&l_updates)?;
    let u = old.u.splice_columns(&u_updates)?;
    report.splice_time = t.elapsed();
    debug_assert!(l.is_strictly_lower());
    debug_assert!(u.is_upper());
    Ok((LuFactors { l, u }, report))
}

/// Bit-level comparison of a freshly solved column against the stored
/// column `j` of `t` (pattern and value bits).
fn column_changed(t: &CscMatrix, j: Index, rows: &[Index], vals: &[f64]) -> bool {
    let (or, ov) = t.col(j);
    rows != or || vals.iter().zip(ov).any(|(a, b)| a.to_bits() != b.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense multiply of the stored factors (adding L's implicit diagonal).
    fn dense_lu_product(f: &LuFactors) -> Vec<Vec<f64>> {
        let n = f.dim();
        let ld = f.l.to_dense();
        let ud = f.u.to_dense();
        let mut out = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    let l_ik = if i == k { 1.0 } else { ld[i][k] };
                    acc += l_ik * ud[k][j];
                }
                out[i][j] = acc;
            }
        }
        out
    }

    fn assert_matrix_close(a: &[Vec<f64>], b: &[Vec<f64>], tol: f64) {
        for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
            for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
                assert!((x - y).abs() <= tol * (1.0 + y.abs()), "({i},{j}): {x} vs {y}");
            }
        }
    }

    fn assert_factors_bit_identical(a: &LuFactors, b: &LuFactors) {
        for (x, y) in [(&a.l, &b.l), (&a.u, &b.u)] {
            let (xp, xi, xv) = x.raw();
            let (yp, yi, yv) = y.raw();
            assert_eq!(xp, yp, "column pointers differ");
            assert_eq!(xi, yi, "row patterns differ");
            assert!(xv.iter().zip(yv).all(|(p, q)| p.to_bits() == q.to_bits()));
        }
    }

    fn random_dominant(n: usize, density: f64, seed: u64) -> CscMatrix {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        let mut col_sum = vec![0.0f64; n];
        for j in 0..n as Index {
            for i in 0..n as Index {
                if i != j && rng.gen_bool(density) {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    trips.push((i, j, v));
                    col_sum[j as usize] += v.abs();
                }
            }
        }
        for (j, &cs) in col_sum.iter().enumerate() {
            trips.push((j as Index, j as Index, cs + 1.0));
        }
        CscMatrix::from_triplets(n, n, &trips).unwrap()
    }

    #[test]
    fn factors_small_dense_matrix() {
        // W = [4 1 0; 1 4 1; 0 1 4]
        let w = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 4.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 4.0), (2, 1, 1.0), (1, 2, 1.0), (2, 2, 4.0)],
        )
        .unwrap();
        let f = sparse_lu(&w).unwrap();
        assert!(f.l.is_strictly_lower());
        assert!(f.u.is_upper());
        assert_matrix_close(&dense_lu_product(&f), &w.to_dense(), 1e-12);
    }

    #[test]
    fn identity_factors_trivially() {
        let w = CscMatrix::identity(4);
        let f = sparse_lu(&w).unwrap();
        assert_eq!(f.l.nnz(), 0);
        assert_eq!(f.u.nnz(), 4);
        assert_eq!(f.solve_dense(&[1.0, 2.0, 3.0, 4.0]).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn singular_matrix_rejected() {
        // second column identically zero
        let w = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(sparse_lu(&w), Err(SparseError::SingularPivot { column: 1, .. })));
    }

    #[test]
    fn non_square_rejected() {
        let w = CscMatrix::zeros(2, 3);
        assert!(matches!(sparse_lu(&w), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn solve_dense_matches_reference() {
        let w = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 4.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 4.0), (2, 1, 1.0), (1, 2, 1.0), (2, 2, 4.0)],
        )
        .unwrap();
        let f = sparse_lu(&w).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = f.solve_dense(&b).unwrap();
        let recon = w.matvec(&x);
        for (r, e) in recon.iter().zip(&b) {
            assert!((r - e).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_and_dense_solves_agree() {
        let w = CscMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 5.0),
                (1, 1, 5.0),
                (2, 2, 5.0),
                (3, 3, 5.0),
                (1, 0, -1.0),
                (2, 1, -1.0),
                (3, 2, -1.0),
                (0, 3, -1.0),
            ],
        )
        .unwrap();
        let f = sparse_lu(&w).unwrap();
        let mut ws = SolveWorkspace::new(4);
        for q in 0..4 as Index {
            let (xi, xv) = f.solve_unit_sparse(&mut ws, q).unwrap();
            let mut e = vec![0.0; 4];
            e[q as usize] = 1.0;
            let dense = f.solve_dense(&e).unwrap();
            let mut sparse = [0.0; 4];
            for (&i, &v) in xi.iter().zip(&xv) {
                sparse[i as usize] = v;
            }
            for (a, b) in sparse.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn random_diag_dominant_roundtrip() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = rng.gen_range(2..30usize);
            let w = random_dominant(n, 0.25, 1000 + trial);
            let f = sparse_lu(&w).unwrap();
            assert_matrix_close(&dense_lu_product(&f), &w.to_dense(), 1e-10);
            // Solve against a random RHS and verify the residual.
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = f.solve_dense(&b).unwrap();
            let recon = w.matvec(&x);
            for (r, e) in recon.iter().zip(&b) {
                assert!((r - e).abs() < 1e-8, "{r} vs {e}");
            }
        }
    }

    #[test]
    fn parallel_lu_is_bit_identical() {
        for seed in 0..6u64 {
            let w = random_dominant(60, 0.08, seed);
            let seq = sparse_lu(&w).unwrap();
            for threads in [2usize, 3, 0] {
                let par = sparse_lu_with(&w, InvertOptions { threads }).unwrap();
                assert_factors_bit_identical(&seq, &par);
            }
        }
    }

    #[test]
    fn parallel_lu_reports_the_lowest_singular_column() {
        // Columns 2 and 5 are identically zero; every thread count must
        // report column 2, exactly like the sequential factorisation.
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        for j in 0..8u32 {
            if j != 2 && j != 5 {
                trips.push((j, j, 1.0));
            }
        }
        trips.push((3, 0, 0.5));
        trips.push((7, 1, 0.5));
        let w = CscMatrix::from_triplets(8, 8, &trips).unwrap();
        for threads in [1usize, 2, 4, 0] {
            match sparse_lu_with(&w, InvertOptions { threads }) {
                Err(SparseError::SingularPivot { column, .. }) => {
                    assert_eq!(column, 2, "threads {threads}")
                }
                other => panic!("threads {threads}: expected singular pivot, got {other:?}"),
            }
        }
    }

    #[test]
    fn refactor_matches_full_lu_bitwise() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..12u64 {
            let n = rng.gen_range(8..40usize);
            let w_old = random_dominant(n, 0.15, 100 + trial);
            let old = sparse_lu(&w_old).unwrap();
            // Perturb a few columns (keep dominance: bump the diagonal).
            let mut dirty: Vec<Index> = (0..rng.gen_range(1..4usize))
                .map(|_| rng.gen_range(0..n) as Index)
                .collect();
            dirty.sort_unstable();
            dirty.dedup();
            let mut updates = Vec::new();
            for &j in &dirty {
                let (rows, vals) = w_old.col(j);
                let mut rows = rows.to_vec();
                let mut vals = vals.to_vec();
                if let Some(at) = rows.iter().position(|&r| r == j) {
                    vals[at] += 1.0 + rng.gen_range(0.0..1.0);
                } else {
                    rows.push(j);
                    vals.push(5.0);
                    let mut pairs: Vec<(Index, f64)> =
                        rows.iter().copied().zip(vals.iter().copied()).collect();
                    pairs.sort_unstable_by_key(|&(r, _)| r);
                    rows = pairs.iter().map(|&(r, _)| r).collect();
                    vals = pairs.iter().map(|&(_, v)| v).collect();
                }
                updates.push(ColumnUpdate { col: j, rows, vals });
            }
            let w_new = w_old.splice_columns(&updates).unwrap();
            let full = sparse_lu(&w_new).unwrap();
            let (inc, report) = refactor_columns(&old, &w_new, &dirty).unwrap();
            assert_factors_bit_identical(&full, &inc);
            assert_eq!(report.dirty_w_columns, dirty.len());
            assert!(report.recomputed_columns >= report.changed_l_columns.len());
            // Parallel refactor: same bits at every thread count.
            for threads in [2usize, 0] {
                let (par, preport) =
                    refactor_columns_with(&old, &w_new, &dirty, InvertOptions { threads })
                        .unwrap();
                assert_factors_bit_identical(&full, &par);
                assert!(preport.recomputed_columns >= report.recomputed_columns);
            }
        }
    }

    #[test]
    fn refactor_with_no_dirty_columns_is_a_clone() {
        let w = random_dominant(20, 0.2, 9);
        let old = sparse_lu(&w).unwrap();
        let (same, report) = refactor_columns(&old, &w, &[]).unwrap();
        assert_factors_bit_identical(&old, &same);
        assert_eq!(report.recomputed_columns, 0);
        assert!(report.changed_l_columns.is_empty() && report.changed_u_columns.is_empty());
        // Out-of-bounds dirty indices are ignored, like the reach API.
        let (same2, report2) = refactor_columns(&old, &w, &[999]).unwrap();
        assert_factors_bit_identical(&old, &same2);
        assert_eq!(report2.dirty_w_columns, 0);
    }

    #[test]
    fn refactor_rejects_mismatched_shapes() {
        let w = random_dominant(6, 0.3, 3);
        let old = sparse_lu(&w).unwrap();
        let bigger = random_dominant(7, 0.3, 4);
        assert!(matches!(
            refactor_columns(&old, &bigger, &[0]),
            Err(SparseError::Malformed(_))
        ));
        let rect = CscMatrix::zeros(6, 7);
        assert!(matches!(refactor_columns(&old, &rect, &[0]), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn refactor_surfaces_singular_columns_deterministically() {
        // Dirtying a column to all-zeros must fail with that column's
        // SingularPivot at any thread count.
        let w = random_dominant(10, 0.2, 11);
        let old = sparse_lu(&w).unwrap();
        let zeroed = w
            .splice_columns(&[ColumnUpdate { col: 4, rows: Vec::new(), vals: Vec::new() }])
            .unwrap();
        for threads in [1usize, 2, 0] {
            match refactor_columns_with(&old, &zeroed, &[4], InvertOptions { threads }) {
                Err(SparseError::SingularPivot { column: 4, .. }) => {}
                other => panic!("threads {threads}: expected singular pivot at 4, got {other:?}"),
            }
        }
    }
}
