//! Left-looking sparse LU factorisation (Gilbert–Peierls).
//!
//! Factors `W = L · U` with unit-diagonal `L` (Doolittle form), matching the
//! paper's Equations (6)–(7): each column of `L` and `U` is computed from
//! the columns to its left. The numeric core of column `j` is a sparse
//! triangular solve `L(0..j, 0..j) x = W(:, j)` whose pattern comes from a
//! DFS over the partially-built `L` — total cost `O(flops)`.
//!
//! No pivoting is performed. The intended input `W = I − (1−c)A` with a
//! column-substochastic `A` and `0 < c < 1` is strictly column diagonally
//! dominant, for which LU without pivoting is well defined and numerically
//! stable; a zero pivot on other inputs surfaces as
//! [`SparseError::SingularPivot`].

use crate::{CscMatrix, Index, Result, SolveWorkspace, SparseError, Triangle};

/// The two triangular factors of `W = L · U`.
///
/// * `l` — unit lower triangular, **diagonal not stored** (all entries are
///   strictly below the diagonal).
/// * `u` — upper triangular, diagonal stored (last entry of each column).
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Strictly-lower part of the unit lower triangular factor.
    pub l: CscMatrix,
    /// Upper triangular factor including the diagonal.
    pub u: CscMatrix,
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.u.ncols()
    }

    /// Combined stored entries of both factors.
    pub fn nnz(&self) -> usize {
        self.l.nnz() + self.u.nnz()
    }

    /// Dense solve `W x = b` via forward then backward substitution.
    /// `O(nnz(L) + nnz(U))`.
    pub fn solve_dense(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(SparseError::Malformed(format!(
                "rhs length {} does not match dimension {n}",
                b.len()
            )));
        }
        let mut x = b.to_vec();
        // Forward: L y = b, unit diagonal, column-oriented.
        for j in 0..n as Index {
            let xj = x[j as usize];
            if xj != 0.0 {
                let (rows, vals) = self.l.col(j);
                for (&i, &v) in rows.iter().zip(vals) {
                    x[i as usize] -= v * xj;
                }
            }
        }
        // Backward: U x = y.
        for j in (0..n as Index).rev() {
            let (rows, vals) = self.u.col(j);
            let diag = match rows.last() {
                Some(&r) if r == j => *vals.last().expect("parallel arrays"),
                _ => return Err(SparseError::SingularPivot { column: j as usize, value: 0.0 }),
            };
            let xj = x[j as usize] / diag;
            x[j as usize] = xj;
            if xj != 0.0 {
                for (&i, &v) in rows[..rows.len() - 1].iter().zip(&vals[..rows.len() - 1]) {
                    x[i as usize] -= v * xj;
                }
            }
        }
        Ok(x)
    }

    /// Sparse solve `W x = e_q` using two Gilbert–Peierls solves. This is
    /// the "no stored inverses" alternative benchmarked by the
    /// `ablation_solve_vs_inverse` bench; it returns the sorted sparse
    /// solution.
    pub fn solve_unit_sparse(
        &self,
        ws: &mut SolveWorkspace,
        q: Index,
    ) -> Result<(Vec<Index>, Vec<f64>)> {
        let (mut yi, mut yv) = (Vec::new(), Vec::new());
        ws.solve_unit(&self.l, Triangle::Lower, true, q, &mut yi, &mut yv)?;
        let (mut xi, mut xv) = (Vec::new(), Vec::new());
        ws.solve(&self.u, Triangle::Upper, false, &yi, &yv, &mut xi, &mut xv)?;
        Ok((xi, xv))
    }
}

/// Factors a square matrix with the left-looking sparse LU algorithm.
pub fn sparse_lu(w: &CscMatrix) -> Result<LuFactors> {
    let n = w.nrows();
    if w.nrows() != w.ncols() {
        return Err(SparseError::NotSquare { nrows: w.nrows(), ncols: w.ncols() });
    }

    // Growing CSC arrays for L (strictly lower, unsorted within a column
    // until finalisation) and U (sorted, diag last).
    let mut l_ptr: Vec<usize> = Vec::with_capacity(n + 1);
    let mut l_rows: Vec<Index> = Vec::new();
    let mut l_vals: Vec<f64> = Vec::new();
    l_ptr.push(0);
    let mut u_ptr: Vec<usize> = Vec::with_capacity(n + 1);
    let mut u_rows: Vec<Index> = Vec::new();
    let mut u_vals: Vec<f64> = Vec::new();
    u_ptr.push(0);

    // Scratch.
    let mut stamp = vec![0u32; n];
    let mut cur = 0u32;
    let mut x = vec![0.0f64; n];
    let mut topo: Vec<Index> = Vec::new();
    let mut stack: Vec<(Index, usize)> = Vec::new();
    let mut col_scratch: Vec<(Index, f64)> = Vec::new();

    for j in 0..n as Index {
        cur += 1;
        topo.clear();
        let (b_rows, b_vals) = w.col(j);

        // Symbolic: reach of pattern(W(:,j)) over the partially built L.
        // Only columns < j exist in L, so nodes >= j have no children.
        for &r in b_rows {
            if stamp[r as usize] == cur {
                continue;
            }
            stamp[r as usize] = cur;
            x[r as usize] = 0.0;
            stack.push((r, 0));
            while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
                let children: &[Index] = if node < j {
                    let range = l_ptr[node as usize]..l_ptr[node as usize + 1];
                    &l_rows[range]
                } else {
                    &[]
                };
                if *cursor < children.len() {
                    let child = children[*cursor];
                    *cursor += 1;
                    if stamp[child as usize] != cur {
                        stamp[child as usize] = cur;
                        x[child as usize] = 0.0;
                        stack.push((child, 0));
                    }
                } else {
                    topo.push(node);
                    stack.pop();
                }
            }
        }
        for (&r, &v) in b_rows.iter().zip(b_vals) {
            x[r as usize] = v;
        }

        // Numeric: reverse postorder = topological order of dependencies.
        for pos in (0..topo.len()).rev() {
            let r = topo[pos];
            if r >= j {
                continue; // rows at or below the pivot only accumulate
            }
            let xr = x[r as usize];
            if xr != 0.0 {
                let range = l_ptr[r as usize]..l_ptr[r as usize + 1];
                for (i, v) in l_rows[range.clone()].iter().zip(&l_vals[range]) {
                    x[*i as usize] -= v * xr;
                }
            }
        }

        // Pivot.
        let pivot = if stamp[j as usize] == cur { x[j as usize] } else { 0.0 };
        if pivot == 0.0 || !pivot.is_finite() {
            return Err(SparseError::SingularPivot { column: j as usize, value: pivot });
        }

        // Emit U(:, j): rows < j, sorted, then the diagonal last.
        col_scratch.clear();
        for &r in &topo {
            if r < j {
                let v = x[r as usize];
                if v != 0.0 {
                    col_scratch.push((r, v));
                }
            }
        }
        col_scratch.sort_unstable_by_key(|&(r, _)| r);
        for &(r, v) in &col_scratch {
            u_rows.push(r);
            u_vals.push(v);
        }
        u_rows.push(j);
        u_vals.push(pivot);
        u_ptr.push(u_rows.len());

        // Emit L(:, j): rows > j, divided by the pivot, sorted.
        col_scratch.clear();
        for &r in &topo {
            if r > j {
                let v = x[r as usize];
                if v != 0.0 {
                    col_scratch.push((r, v / pivot));
                }
            }
        }
        col_scratch.sort_unstable_by_key(|&(r, _)| r);
        for &(r, v) in &col_scratch {
            l_rows.push(r);
            l_vals.push(v);
        }
        l_ptr.push(l_rows.len());
    }

    let l = CscMatrix::from_raw_parts(n, n, l_ptr, l_rows, l_vals)?;
    let u = CscMatrix::from_raw_parts(n, n, u_ptr, u_rows, u_vals)?;
    debug_assert!(l.is_strictly_lower());
    debug_assert!(u.is_upper());
    Ok(LuFactors { l, u })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense multiply of the stored factors (adding L's implicit diagonal).
    fn dense_lu_product(f: &LuFactors) -> Vec<Vec<f64>> {
        let n = f.dim();
        let ld = f.l.to_dense();
        let ud = f.u.to_dense();
        let mut out = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    let l_ik = if i == k { 1.0 } else { ld[i][k] };
                    acc += l_ik * ud[k][j];
                }
                out[i][j] = acc;
            }
        }
        out
    }

    fn assert_matrix_close(a: &[Vec<f64>], b: &[Vec<f64>], tol: f64) {
        for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
            for (j, (x, y)) in ra.iter().zip(rb).enumerate() {
                assert!((x - y).abs() <= tol * (1.0 + y.abs()), "({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn factors_small_dense_matrix() {
        // W = [4 1 0; 1 4 1; 0 1 4]
        let w = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 4.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 4.0), (2, 1, 1.0), (1, 2, 1.0), (2, 2, 4.0)],
        )
        .unwrap();
        let f = sparse_lu(&w).unwrap();
        assert!(f.l.is_strictly_lower());
        assert!(f.u.is_upper());
        assert_matrix_close(&dense_lu_product(&f), &w.to_dense(), 1e-12);
    }

    #[test]
    fn identity_factors_trivially() {
        let w = CscMatrix::identity(4);
        let f = sparse_lu(&w).unwrap();
        assert_eq!(f.l.nnz(), 0);
        assert_eq!(f.u.nnz(), 4);
        assert_eq!(f.solve_dense(&[1.0, 2.0, 3.0, 4.0]).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn singular_matrix_rejected() {
        // second column identically zero
        let w = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(sparse_lu(&w), Err(SparseError::SingularPivot { column: 1, .. })));
    }

    #[test]
    fn non_square_rejected() {
        let w = CscMatrix::zeros(2, 3);
        assert!(matches!(sparse_lu(&w), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn solve_dense_matches_reference() {
        let w = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 4.0), (1, 0, 1.0), (0, 1, 1.0), (1, 1, 4.0), (2, 1, 1.0), (1, 2, 1.0), (2, 2, 4.0)],
        )
        .unwrap();
        let f = sparse_lu(&w).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = f.solve_dense(&b).unwrap();
        let recon = w.matvec(&x);
        for (r, e) in recon.iter().zip(&b) {
            assert!((r - e).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_and_dense_solves_agree() {
        let w = CscMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 5.0),
                (1, 1, 5.0),
                (2, 2, 5.0),
                (3, 3, 5.0),
                (1, 0, -1.0),
                (2, 1, -1.0),
                (3, 2, -1.0),
                (0, 3, -1.0),
            ],
        )
        .unwrap();
        let f = sparse_lu(&w).unwrap();
        let mut ws = SolveWorkspace::new(4);
        for q in 0..4 as Index {
            let (xi, xv) = f.solve_unit_sparse(&mut ws, q).unwrap();
            let mut e = vec![0.0; 4];
            e[q as usize] = 1.0;
            let dense = f.solve_dense(&e).unwrap();
            let mut sparse = [0.0; 4];
            for (&i, &v) in xi.iter().zip(&xv) {
                sparse[i as usize] = v;
            }
            for (a, b) in sparse.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn random_diag_dominant_roundtrip() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(2..30usize);
            let mut trips: Vec<(Index, Index, f64)> = Vec::new();
            let mut col_sum = vec![0.0f64; n];
            for j in 0..n as Index {
                for i in 0..n as Index {
                    if i != j && rng.gen_bool(0.25) {
                        let v: f64 = rng.gen_range(-1.0..1.0);
                        trips.push((i, j, v));
                        col_sum[j as usize] += v.abs();
                    }
                }
            }
            for (j, &cs) in col_sum.iter().enumerate() {
                trips.push((j as Index, j as Index, cs + 1.0)); // strictly dominant
            }
            let w = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let f = sparse_lu(&w).unwrap();
            assert_matrix_close(&dense_lu_product(&f), &w.to_dense(), 1e-10);
            // Solve against a random RHS and verify the residual.
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = f.solve_dense(&b).unwrap();
            let recon = w.matvec(&x);
            for (r, e) in recon.iter().zip(&b) {
                assert!((r - e).abs() < 1e-8, "{r} vs {e}");
            }
        }
    }
}
