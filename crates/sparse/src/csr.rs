//! Compressed sparse row matrices.
//!
//! K-dash stores `U⁻¹` row-major: computing one node's proximity
//! `p_u = c · (U⁻¹)ᵤ,⋆ · (L⁻¹ e_q)` is then a single sparse-row ·
//! sparse-column dot product (§4.2.1 of the paper).

use crate::{CscMatrix, Index, Result};

/// A sparse matrix in compressed-sparse-row form. Column indices within a
/// row are strictly increasing.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Converts a CSC matrix into CSR form (`O(nnz)`).
    pub fn from_csc(csc: &CscMatrix) -> CsrMatrix {
        // CSR of M has the same arrays as CSC of Mᵀ.
        let t = csc.transpose();
        let (col_ptr, row_idx, values) = t.raw();
        CsrMatrix {
            nrows: csc.nrows(),
            ncols: csc.ncols(),
            row_ptr: col_ptr.to_vec(),
            col_idx: row_idx.to_vec(),
            values: values.to_vec(),
        }
    }

    /// Builds directly from CSR arrays with validation.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
        values: Vec<f64>,
    ) -> Result<Self> {
        // Reuse the CSC validator on the transposed interpretation.
        let as_csc = CscMatrix::from_raw_parts(ncols, nrows, row_ptr, col_idx, values)?;
        let (p, i, v) = as_csc.raw();
        Ok(CsrMatrix { nrows, ncols, row_ptr: p.to_vec(), col_idx: i.to_vec(), values: v.to_vec() })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices and values of row `r`.
    #[inline]
    pub fn row(&self, r: Index) -> (&[Index], &[f64]) {
        let r = r as usize;
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[range.clone()], &self.values[range])
    }

    /// Entry `(r, c)` if stored.
    pub fn get(&self, r: Index, c: Index) -> Option<f64> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|i| vals[i])
    }

    /// Dot product of row `r` with a dense vector.
    #[inline]
    pub fn row_dot_dense(&self, r: Index, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.ncols);
        let (cols, vals) = self.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c as usize];
        }
        acc
    }

    /// Dot product of row `r` with a sparse vector given as parallel sorted
    /// `(indices, values)` slices. Two-pointer merge: `O(nnz_row + nnz_vec)`.
    pub fn row_dot_sparse(&self, r: Index, idx: &[Index], val: &[f64]) -> f64 {
        debug_assert_eq!(idx.len(), val.len());
        let (cols, vals) = self.row(r);
        let mut acc = 0.0;
        let (mut a, mut b) = (0usize, 0usize);
        while a < cols.len() && b < idx.len() {
            match cols[a].cmp(&idx[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => {
                    acc += vals[a] * val[b];
                    a += 1;
                    b += 1;
                }
            }
        }
        acc
    }

    /// Dense `y = A · x` (row-major traversal).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        (0..self.nrows as Index).map(|r| self.row_dot_dense(r, x)).collect()
    }

    /// Converts back to CSC form.
    pub fn to_csc(&self) -> CscMatrix {
        CscMatrix::from_raw_parts(
            self.ncols,
            self.nrows,
            self.row_ptr.clone(),
            self.col_idx.clone(),
            self.values.clone(),
        )
        .expect("valid CSR arrays are a valid CSC transpose")
        .transpose()
    }

    /// Iterator over `(row, col, value)` entries.
    pub fn triplets(&self) -> impl Iterator<Item = (Index, Index, f64)> + '_ {
        (0..self.nrows as Index).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Consumes the matrix into its raw arrays `(row_ptr, col_idx,
    /// values)` — the zero-copy handoff the blocked re-encoder uses (the
    /// value array moves over untouched).
    pub fn into_raw_parts(self) -> (Vec<usize>, Vec<Index>, Vec<f64>) {
        (self.row_ptr, self.col_idx, self.values)
    }

    /// Heap footprint of the arrays in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<Index>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// Replaces whole rows, returning a new matrix: rows named by an
    /// update take the update's content, every other row is copied over
    /// verbatim — the row-major twin of
    /// [`crate::CscMatrix::splice_columns`], used by the dynamic engine to
    /// patch the stored `U⁻¹` under the flat layout. `updates` must be
    /// sorted by strictly increasing row.
    pub fn splice_rows(&self, updates: &[RowUpdate]) -> Result<CsrMatrix> {
        validate_row_updates(self.nrows, self.ncols, updates)?;
        let delta: isize = updates
            .iter()
            .map(|u| u.cols.len() as isize - self.row(u.row).0.len() as isize)
            .sum();
        let new_nnz = (self.nnz() as isize + delta) as usize;
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<Index> = Vec::with_capacity(new_nnz);
        let mut values: Vec<f64> = Vec::with_capacity(new_nnz);
        let mut clean_from = 0usize;
        let flush_clean = |upto: usize,
                               row_ptr: &mut Vec<usize>,
                               col_idx: &mut Vec<Index>,
                               values: &mut Vec<f64>,
                               clean_from: &mut usize| {
            if *clean_from < upto {
                let span = self.row_ptr[*clean_from]..self.row_ptr[upto];
                let base = col_idx.len() as isize - self.row_ptr[*clean_from] as isize;
                col_idx.extend_from_slice(&self.col_idx[span.clone()]);
                values.extend_from_slice(&self.values[span]);
                for r in *clean_from..upto {
                    row_ptr.push((self.row_ptr[r + 1] as isize + base) as usize);
                }
                *clean_from = upto;
            }
        };
        for u in updates {
            let r = u.row as usize;
            flush_clean(r, &mut row_ptr, &mut col_idx, &mut values, &mut clean_from);
            col_idx.extend_from_slice(&u.cols);
            values.extend_from_slice(&u.vals);
            row_ptr.push(col_idx.len());
            clean_from = r + 1;
        }
        flush_clean(self.nrows, &mut row_ptr, &mut col_idx, &mut values, &mut clean_from);
        Ok(CsrMatrix { nrows: self.nrows, ncols: self.ncols, row_ptr, col_idx, values })
    }
}

/// A replacement for one row of a row-major matrix: the full new content
/// (possibly empty), sorted by column. Consumed by
/// [`CsrMatrix::splice_rows`], [`crate::BlockedCsr::splice_rows`] and
/// [`crate::ProximityStore::splice_rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowUpdate {
    /// Which row the update replaces.
    pub row: Index,
    /// Sorted column indices of the new content.
    pub cols: Vec<Index>,
    /// Values parallel to `cols`.
    pub vals: Vec<f64>,
}

/// Shared validation for the row-splice entry points: updates sorted by
/// strictly increasing in-bounds row, each with sorted in-bounds columns,
/// matching lengths and finite values.
pub(crate) fn validate_row_updates(
    nrows: usize,
    ncols: usize,
    updates: &[RowUpdate],
) -> crate::Result<()> {
    use crate::SparseError;
    for (k, u) in updates.iter().enumerate() {
        if (u.row as usize) >= nrows {
            return Err(SparseError::Malformed(format!(
                "update row {} out of bounds for {} rows",
                u.row, nrows
            )));
        }
        if k > 0 && updates[k - 1].row >= u.row {
            return Err(SparseError::Malformed(
                "updates must be sorted by strictly increasing row".into(),
            ));
        }
        if u.cols.len() != u.vals.len() {
            return Err(SparseError::Malformed(format!(
                "update row {}: {} columns vs {} values",
                u.row,
                u.cols.len(),
                u.vals.len()
            )));
        }
        for (i, &c) in u.cols.iter().enumerate() {
            if (c as usize) >= ncols {
                return Err(SparseError::Malformed(format!(
                    "update row {}: column {c} out of bounds",
                    u.row
                )));
            }
            if i > 0 && u.cols[i - 1] >= c {
                return Err(SparseError::Malformed(format!(
                    "update row {}: columns not strictly increasing",
                    u.row
                )));
            }
        }
        if u.vals.iter().any(|v| !v.is_finite()) {
            return Err(SparseError::Malformed(format!(
                "update row {}: non-finite value",
                u.row
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csc() -> CscMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CscMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (2, 0, 4.0), (1, 1, 3.0), (0, 2, 2.0), (2, 2, 5.0)])
            .unwrap()
    }

    #[test]
    fn csc_roundtrip() {
        let csc = sample_csc();
        let csr = CsrMatrix::from_csc(&csc);
        assert_eq!(csr.nnz(), csc.nnz());
        assert_eq!(csr.get(0, 2), Some(2.0));
        assert_eq!(csr.get(2, 0), Some(4.0));
        assert_eq!(csr.get(1, 0), None);
        assert_eq!(csr.to_csc(), csc);
    }

    #[test]
    fn row_access_sorted() {
        let csr = CsrMatrix::from_csc(&sample_csc());
        let (cols, vals) = csr.row(2);
        assert_eq!(cols, &[0, 2]);
        assert_eq!(vals, &[4.0, 5.0]);
    }

    #[test]
    fn matvec_matches_csc() {
        let csc = sample_csc();
        let csr = CsrMatrix::from_csc(&csc);
        let x = [1.0, -1.0, 0.5];
        assert_eq!(csr.matvec(&x), csc.matvec(&x));
    }

    #[test]
    fn row_dot_dense_and_sparse_agree() {
        let csr = CsrMatrix::from_csc(&sample_csc());
        let dense = [0.5, 0.0, 2.0];
        let idx = [0 as Index, 2];
        let val = [0.5, 2.0];
        for r in 0..3 {
            let d = csr.row_dot_dense(r, &dense);
            let s = csr.row_dot_sparse(r, &idx, &val);
            assert!((d - s).abs() < 1e-15, "row {r}: {d} vs {s}");
        }
    }

    #[test]
    fn row_dot_sparse_disjoint_is_zero() {
        let csr = CsrMatrix::from_csc(&sample_csc());
        // row 1 has only column 1; sparse vector on {0, 2}
        assert_eq!(csr.row_dot_sparse(1, &[0, 2], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 3], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn splice_rows_matches_from_scratch() {
        let csr = CsrMatrix::from_csc(&sample_csc());
        let updates = vec![
            RowUpdate { row: 0, cols: vec![1], vals: vec![9.0] },
            RowUpdate { row: 2, cols: vec![], vals: vec![] },
        ];
        let spliced = csr.splice_rows(&updates).unwrap();
        let scratch = CsrMatrix::from_csc(
            &CscMatrix::from_triplets(3, 3, &[(0, 1, 9.0), (1, 1, 3.0)]).unwrap(),
        );
        assert_eq!(spliced, scratch);
        assert_eq!(csr.splice_rows(&[]).unwrap(), csr);
        // Untouched row survives verbatim.
        assert_eq!(spliced.row(1), csr.row(1));
    }

    #[test]
    fn splice_rows_validates() {
        let csr = CsrMatrix::from_csc(&sample_csc());
        let bad = [
            vec![RowUpdate { row: 9, cols: vec![], vals: vec![] }],
            vec![
                RowUpdate { row: 1, cols: vec![], vals: vec![] },
                RowUpdate { row: 0, cols: vec![], vals: vec![] },
            ],
            vec![RowUpdate { row: 0, cols: vec![5], vals: vec![1.0] }],
            vec![RowUpdate { row: 0, cols: vec![1, 0], vals: vec![1.0, 1.0] }],
            vec![RowUpdate { row: 0, cols: vec![0], vals: vec![f64::INFINITY] }],
            vec![RowUpdate { row: 0, cols: vec![0, 1], vals: vec![1.0] }],
        ];
        for (i, updates) in bad.iter().enumerate() {
            assert!(csr.splice_rows(updates).is_err(), "case {i} must be rejected");
        }
    }
}
