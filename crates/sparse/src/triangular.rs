//! Sparse triangular solves with sparse right-hand sides.
//!
//! Solving `T x = b` for triangular `T` and sparse `b` is the workhorse of
//! both the left-looking LU factorisation ([`crate::lu`]) and the triangular
//! inversion ([`crate::inverse`]). The classic observation of Gilbert &
//! Peierls (1988) is that the nonzero pattern of `x` is exactly the set of
//! nodes *reachable* from `pattern(b)` in the directed graph of `T`
//! (an edge `j -> i` for every stored `T_ij`, `i != j`), and that a DFS
//! yields that set in topological order — so the whole solve costs
//! `O(flops)` instead of `O(n)`.
//!
//! Supports lower (forward substitution) and upper (backward substitution)
//! triangles, with either an implicit unit diagonal or an explicitly stored
//! one. Entries on the "wrong" side of the diagonal are ignored, which lets
//! the factor `L` (stored without its diagonal) and the inverse `L⁻¹`
//! (stored with it) share this code.

use crate::{CscMatrix, Index, Result, SparseError};
use kdash_graph::EpochStamps;

/// Which triangle a matrix is solved as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Forward substitution; dependencies flow from low to high indices.
    Lower,
    /// Backward substitution; dependencies flow from high to low indices.
    Upper,
}

/// Reusable scratch space for repeated sparse solves on matrices of the same
/// dimension. Reuse amortises the `O(n)` allocations away: each solve then
/// touches only the nonzero pattern it produces.
#[derive(Debug, Clone)]
pub struct SolveWorkspace {
    n: usize,
    /// Visit marks: a position is in the current pattern iff marked.
    stamps: EpochStamps,
    /// Dense value accumulator, valid only on stamped positions.
    x: Vec<f64>,
    /// DFS postorder of the current pattern.
    topo: Vec<Index>,
    /// Iterative DFS stack of `(node, next-child cursor)`.
    stack: Vec<(Index, usize)>,
}

impl SolveWorkspace {
    /// Workspace for `n x n` solves.
    pub fn new(n: usize) -> Self {
        SolveWorkspace {
            n,
            stamps: EpochStamps::new(n),
            x: vec![0.0; n],
            topo: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Dimension this workspace serves.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `T x = b` and appends the sorted sparse solution to
    /// `out_idx` / `out_val` (cleared first).
    ///
    /// * `triangle` — which half of `T` participates; entries on the other
    ///   side of the diagonal are ignored.
    /// * `unit_diag` — if true the diagonal is taken to be 1 whether or not
    ///   it is stored; otherwise the stored diagonal divides and must exist.
    /// * `b_idx` / `b_val` — sparse right-hand side (indices need not be
    ///   sorted; duplicates accumulate).
    #[allow(clippy::too_many_arguments)] // mirrors the mathematical signature
    pub fn solve(
        &mut self,
        t: &CscMatrix,
        triangle: Triangle,
        unit_diag: bool,
        b_idx: &[Index],
        b_val: &[f64],
        out_idx: &mut Vec<Index>,
        out_val: &mut Vec<f64>,
    ) -> Result<()> {
        debug_assert_eq!(b_idx.len(), b_val.len());
        if t.nrows() != t.ncols() {
            return Err(SparseError::NotSquare { nrows: t.nrows(), ncols: t.ncols() });
        }
        if t.nrows() != self.n {
            return Err(SparseError::Malformed(format!(
                "workspace dimension {} does not match matrix dimension {}",
                self.n,
                t.nrows()
            )));
        }
        out_idx.clear();
        out_val.clear();
        self.stamps.advance();
        self.topo.clear();

        // Symbolic phase: DFS from every RHS index, collecting postorder.
        for &r in b_idx {
            debug_assert!((r as usize) < self.n, "rhs index out of bounds");
            if self.stamps.is_marked(r as usize) {
                continue;
            }
            self.stamps.mark(r as usize);
            self.x[r as usize] = 0.0;
            self.stack.push((r, 0));
            while let Some(&mut (node, ref mut cursor)) = self.stack.last_mut() {
                let children = strict_range(t, node, triangle);
                if *cursor < children.len() {
                    let child = children[*cursor];
                    *cursor += 1;
                    if !self.stamps.is_marked(child as usize) {
                        self.stamps.mark(child as usize);
                        self.x[child as usize] = 0.0;
                        self.stack.push((child, 0));
                    }
                } else {
                    self.topo.push(node);
                    self.stack.pop();
                }
            }
        }

        // Scatter the RHS (after the DFS has zeroed every pattern slot).
        for (&r, &v) in b_idx.iter().zip(b_val) {
            self.x[r as usize] += v;
        }

        // Numeric phase in reverse postorder (a topological order).
        for pos in (0..self.topo.len()).rev() {
            let j = self.topo[pos];
            let mut xj = self.x[j as usize];
            if !unit_diag {
                let diag = diag_value(t, j, triangle).ok_or(SparseError::SingularPivot {
                    column: j as usize,
                    value: 0.0,
                })?;
                if diag == 0.0 {
                    return Err(SparseError::SingularPivot { column: j as usize, value: 0.0 });
                }
                xj /= diag;
                self.x[j as usize] = xj;
            }
            if xj != 0.0 {
                let (rows, vals) = t.col(j);
                let range = strict_span(rows, j, triangle);
                for (&i, &v) in rows[range.clone()].iter().zip(&vals[range]) {
                    self.x[i as usize] -= v * xj;
                }
            }
        }

        // Gather, sorted by index; drop exact zeros (cancellation).
        out_idx.extend_from_slice(&self.topo);
        out_idx.sort_unstable();
        out_val.reserve(out_idx.len());
        let mut kept = 0usize;
        for read in 0..out_idx.len() {
            let j = out_idx[read];
            let v = self.x[j as usize];
            if v != 0.0 {
                out_idx[kept] = j;
                out_val.push(v);
                kept += 1;
            }
        }
        out_idx.truncate(kept);
        Ok(())
    }

    /// Convenience wrapper: solves `T x = e_j`.
    pub fn solve_unit(
        &mut self,
        t: &CscMatrix,
        triangle: Triangle,
        unit_diag: bool,
        j: Index,
        out_idx: &mut Vec<Index>,
        out_val: &mut Vec<f64>,
    ) -> Result<()> {
        self.solve(t, triangle, unit_diag, &[j], &[1.0], out_idx, out_val)
    }
}

/// Strictly-below (Lower) or strictly-above (Upper) entries of column `j`,
/// as a row-index slice. Relies on columns being sorted.
#[inline]
fn strict_range(t: &CscMatrix, j: Index, triangle: Triangle) -> &[Index] {
    let (rows, _) = t.col(j);
    let span = strict_span(rows, j, triangle);
    &rows[span]
}

#[inline]
fn strict_span(rows: &[Index], j: Index, triangle: Triangle) -> std::ops::Range<usize> {
    match triangle {
        Triangle::Lower => rows.partition_point(|&r| r <= j)..rows.len(),
        Triangle::Upper => 0..rows.partition_point(|&r| r < j),
    }
}

/// The stored diagonal entry of column `j`, if present.
#[inline]
fn diag_value(t: &CscMatrix, j: Index, _triangle: Triangle) -> Option<f64> {
    t.get(j, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference forward substitution for unit-lower `L` (diag absent).
    fn dense_lower_unit_solve(l: &CscMatrix, b: &[f64]) -> Vec<f64> {
        let n = l.nrows();
        let d = l.to_dense();
        let mut x = b.to_vec();
        for j in 0..n {
            let xj = x[j];
            for i in j + 1..n {
                x[i] -= d[i][j] * xj;
            }
        }
        x
    }

    fn dense_upper_solve(u: &CscMatrix, b: &[f64]) -> Vec<f64> {
        let n = u.nrows();
        let d = u.to_dense();
        let mut x = b.to_vec();
        for j in (0..n).rev() {
            x[j] /= d[j][j];
            let xj = x[j];
            for i in 0..j {
                x[i] -= d[i][j] * xj;
            }
        }
        x
    }

    fn to_dense_vec(n: usize, idx: &[Index], val: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for (&i, &v) in idx.iter().zip(val) {
            x[i as usize] = v;
        }
        x
    }

    fn approx_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()), "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn lower_unit_sparse_rhs() {
        // L (diag implicit):
        // [.    ]
        // [2 .  ]
        // [0 3 .]
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[0], &[1.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(3, &oi, &ov);
        approx_eq(&x, &dense_lower_unit_solve(&l, &[1.0, 0.0, 0.0]));
        assert_eq!(oi, vec![0, 1, 2]); // reach of node 0 is everything
    }

    #[test]
    fn lower_unit_pattern_is_reachability() {
        // chain 0 -> 1, isolated 2
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[2], &[5.0], &mut oi, &mut ov).unwrap();
        assert_eq!(oi, vec![2]);
        assert_eq!(ov, vec![5.0]);
    }

    #[test]
    fn upper_with_diag() {
        // U:
        // [2 1 0]
        // [0 4 5]
        // [0 0 8]
        let u = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0), (1, 2, 5.0), (2, 2, 8.0)],
        )
        .unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&u, Triangle::Upper, false, &[2], &[8.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(3, &oi, &ov);
        approx_eq(&x, &dense_upper_solve(&u, &[0.0, 0.0, 8.0]));
    }

    #[test]
    fn singular_pivot_detected() {
        // upper matrix missing diagonal at column 1
        let u = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(2);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        let err = ws.solve(&u, Triangle::Upper, false, &[1], &[1.0], &mut oi, &mut ov).unwrap_err();
        assert!(matches!(err, SparseError::SingularPivot { column: 1, .. }));
    }

    #[test]
    fn duplicate_rhs_indices_accumulate() {
        let l = CscMatrix::from_triplets(2, 2, &[(1, 0, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(2);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[0, 0], &[1.0, 2.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(2, &oi, &ov);
        approx_eq(&x, &[3.0, -3.0]);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[0], &[1.0], &mut oi, &mut ov).unwrap();
        // Second solve with a different RHS must not see stale state.
        ws.solve(&l, Triangle::Lower, true, &[1], &[1.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(3, &oi, &ov);
        approx_eq(&x, &dense_lower_unit_solve(&l, &[0.0, 1.0, 0.0]));
    }

    #[test]
    fn explicit_diagonal_ignored_under_unit_flag() {
        // Same matrix with and without stored unit diagonal must solve alike.
        let no_diag = CscMatrix::from_triplets(2, 2, &[(1, 0, 2.0)]).unwrap();
        let with_diag =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (1, 1, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(2);
        let (mut i1, mut v1) = (Vec::new(), Vec::new());
        let (mut i2, mut v2) = (Vec::new(), Vec::new());
        ws.solve(&no_diag, Triangle::Lower, true, &[0], &[3.0], &mut i1, &mut v1).unwrap();
        ws.solve(&with_diag, Triangle::Lower, true, &[0], &[3.0], &mut i2, &mut v2).unwrap();
        assert_eq!(i1, i2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn random_lower_matches_dense_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = rng.gen_range(1..24usize);
            let mut trips = Vec::new();
            for j in 0..n as Index {
                for i in (j + 1)..n as Index {
                    if rng.gen_bool(0.3) {
                        trips.push((i, j, rng.gen_range(-2.0..2.0)));
                    }
                }
            }
            let l = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let k = rng.gen_range(1..=n);
            let mut b_idx: Vec<Index> = (0..n as Index).collect();
            // random subset as RHS
            for i in (1..b_idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                b_idx.swap(i, j);
            }
            b_idx.truncate(k);
            let b_val: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut dense_b = vec![0.0; n];
            for (&i, &v) in b_idx.iter().zip(&b_val) {
                dense_b[i as usize] += v;
            }
            let mut ws = SolveWorkspace::new(n);
            let (mut oi, mut ov) = (Vec::new(), Vec::new());
            ws.solve(&l, Triangle::Lower, true, &b_idx, &b_val, &mut oi, &mut ov).unwrap();
            let x = to_dense_vec(n, &oi, &ov);
            let expect = dense_lower_unit_solve(&l, &dense_b);
            for (i, (a, e)) in x.iter().zip(&expect).enumerate() {
                assert!((a - e).abs() < 1e-9, "trial {trial} idx {i}: {a} vs {e}");
            }
        }
    }
}
