//! Sparse triangular solves with sparse right-hand sides.
//!
//! Solving `T x = b` for triangular `T` and sparse `b` is the workhorse of
//! both the left-looking LU factorisation ([`crate::lu`]) and the triangular
//! inversion ([`crate::inverse`]). The classic observation of Gilbert &
//! Peierls (1988) is that the nonzero pattern of `x` is exactly the set of
//! nodes *reachable* from `pattern(b)` in the directed graph of `T`
//! (an edge `j -> i` for every stored `T_ij`, `i != j`), and that a DFS
//! yields that set in topological order — so the whole solve costs
//! `O(flops)` instead of `O(n)`.
//!
//! Supports lower (forward substitution) and upper (backward substitution)
//! triangles, with either an implicit unit diagonal or an explicitly stored
//! one. Entries on the "wrong" side of the diagonal are ignored, which lets
//! the factor `L` (stored without its diagonal) and the inverse `L⁻¹`
//! (stored with it) share this code.

use crate::{CscMatrix, Index, Result, SparseError};
use kdash_graph::EpochStamps;
use std::collections::BinaryHeap;

/// Which triangle a matrix is solved as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triangle {
    /// Forward substitution; dependencies flow from low to high indices.
    Lower,
    /// Backward substitution; dependencies flow from high to low indices.
    Upper,
}

/// Reusable scratch space for repeated sparse solves on matrices of the same
/// dimension. Reuse amortises the `O(n)` allocations away: each solve then
/// touches only the nonzero pattern it produces.
#[derive(Debug, Clone)]
pub struct SolveWorkspace {
    n: usize,
    /// Visit marks: a position is in the current pattern iff marked.
    stamps: EpochStamps,
    /// Dense value accumulator, valid only on stamped positions.
    x: Vec<f64>,
    /// DFS postorder of the current pattern.
    topo: Vec<Index>,
    /// Iterative DFS stack of `(node, next-child cursor)`.
    stack: Vec<(Index, usize)>,
    /// Pending-node queue for the value-driven truncated solve, holding
    /// indices encoded so the max-heap pops them in dependency order
    /// (negated for `Lower`, plain for `Upper`).
    pending: BinaryHeap<i64>,
}

impl SolveWorkspace {
    /// Workspace for `n x n` solves.
    pub fn new(n: usize) -> Self {
        SolveWorkspace {
            n,
            stamps: EpochStamps::new(n),
            x: vec![0.0; n],
            topo: Vec::new(),
            stack: Vec::new(),
            pending: BinaryHeap::new(),
        }
    }

    /// Dimension this workspace serves.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `T x = b` and appends the sorted sparse solution to
    /// `out_idx` / `out_val` (cleared first).
    ///
    /// * `triangle` — which half of `T` participates; entries on the other
    ///   side of the diagonal are ignored.
    /// * `unit_diag` — if true the diagonal is taken to be 1 whether or not
    ///   it is stored; otherwise the stored diagonal divides and must exist.
    /// * `b_idx` / `b_val` — sparse right-hand side (indices need not be
    ///   sorted; duplicates accumulate).
    #[allow(clippy::too_many_arguments)] // mirrors the mathematical signature
    pub fn solve(
        &mut self,
        t: &CscMatrix,
        triangle: Triangle,
        unit_diag: bool,
        b_idx: &[Index],
        b_val: &[f64],
        out_idx: &mut Vec<Index>,
        out_val: &mut Vec<f64>,
    ) -> Result<()> {
        self.solve_truncated(t, triangle, unit_diag, b_idx, b_val, 0.0, None, out_idx, out_val)
            .map(|_| ())
    }

    /// [`SolveWorkspace::solve`] with drop-tolerance truncation *during*
    /// substitution: once a solution entry `x_j` is final, if `|x_j| < eps`
    /// it is zeroed before it propagates to any dependent entry, and
    /// `|x_j|` is added to the returned dropped ℓ₁ mass. Killing the entry
    /// before propagation (rather than pruning afterwards) also skips all
    /// downstream work it would have caused, so truncation cuts solve time
    /// as well as output size.
    ///
    /// With `eps > 0` the solve runs *value-driven*: instead of the
    /// Gilbert–Peierls symbolic DFS (whose cost is the full exact reach of
    /// the pattern, truncated or not) it processes discovered positions
    /// from a heap in dependency order — ascending indices for `Lower`,
    /// descending for `Upper`. Substitution dependencies only flow in that
    /// direction and scattering a popped node discovers only nodes further
    /// along it, so pops are monotone and a popped value is final; a
    /// truncated entry's downstream subtree is therefore never *visited*,
    /// and the whole solve costs `O(s log s)` in the surviving pattern
    /// plus its one-hop frontier rather than the exact reach. The two
    /// strategies apply the same arithmetic along different accumulation
    /// orders, so ε > 0 results are equal up to rounding but not
    /// bit-pinned between them; every caller of one is compared only
    /// against itself (stored sparsified columns vs dynamic re-solves, and
    /// the refinement loop certifies rankings, not bit patterns).
    ///
    /// `protect` names one position that is never truncated regardless of
    /// magnitude — inversion drivers protect the diagonal seed so `L⁻¹`
    /// keeps its unit diagonal and `U⁻¹` its explicit diagonal.
    ///
    /// With `eps == 0.0` the truncation branch can never fire
    /// (`|x_j| < 0.0` is false for every float), so the output is
    /// bit-identical to [`SolveWorkspace::solve`] and the dropped mass
    /// is exactly `0.0`.
    #[allow(clippy::too_many_arguments)] // mirrors the mathematical signature
    pub fn solve_truncated(
        &mut self,
        t: &CscMatrix,
        triangle: Triangle,
        unit_diag: bool,
        b_idx: &[Index],
        b_val: &[f64],
        eps: f64,
        protect: Option<Index>,
        out_idx: &mut Vec<Index>,
        out_val: &mut Vec<f64>,
    ) -> Result<f64> {
        debug_assert_eq!(b_idx.len(), b_val.len());
        debug_assert!(eps >= 0.0 && eps.is_finite(), "drop tolerance must be finite and >= 0");
        if t.nrows() != t.ncols() {
            return Err(SparseError::NotSquare { nrows: t.nrows(), ncols: t.ncols() });
        }
        if t.nrows() != self.n {
            return Err(SparseError::Malformed(format!(
                "workspace dimension {} does not match matrix dimension {}",
                self.n,
                t.nrows()
            )));
        }
        out_idx.clear();
        out_val.clear();
        if eps > 0.0 {
            return self.solve_truncated_worklist(
                t, triangle, unit_diag, b_idx, b_val, eps, protect, out_idx, out_val,
            );
        }
        self.stamps.advance();
        self.topo.clear();

        // Symbolic phase: DFS from every RHS index, collecting postorder.
        for &r in b_idx {
            debug_assert!((r as usize) < self.n, "rhs index out of bounds");
            if self.stamps.is_marked(r as usize) {
                continue;
            }
            self.stamps.mark(r as usize);
            self.x[r as usize] = 0.0;
            self.stack.push((r, 0));
            while let Some(&mut (node, ref mut cursor)) = self.stack.last_mut() {
                let children = strict_range(t, node, triangle);
                if *cursor < children.len() {
                    let child = children[*cursor];
                    *cursor += 1;
                    if !self.stamps.is_marked(child as usize) {
                        self.stamps.mark(child as usize);
                        self.x[child as usize] = 0.0;
                        self.stack.push((child, 0));
                    }
                } else {
                    self.topo.push(node);
                    self.stack.pop();
                }
            }
        }

        // Scatter the RHS (after the DFS has zeroed every pattern slot).
        for (&r, &v) in b_idx.iter().zip(b_val) {
            self.x[r as usize] += v;
        }

        // Numeric phase in reverse postorder (a topological order).
        let mut dropped = 0.0f64;
        for pos in (0..self.topo.len()).rev() {
            let j = self.topo[pos];
            let mut xj = self.x[j as usize];
            if !unit_diag {
                let diag = diag_value(t, j, triangle).ok_or(SparseError::SingularPivot {
                    column: j as usize,
                    value: 0.0,
                })?;
                if diag == 0.0 {
                    return Err(SparseError::SingularPivot { column: j as usize, value: 0.0 });
                }
                xj /= diag;
                self.x[j as usize] = xj;
            }
            if xj != 0.0 {
                if xj.abs() < eps && protect != Some(j) {
                    dropped += xj.abs();
                    self.x[j as usize] = 0.0;
                    continue; // never propagates; the gather drops the exact zero
                }
                let (rows, vals) = t.col(j);
                let range = strict_span(rows, j, triangle);
                for (&i, &v) in rows[range.clone()].iter().zip(&vals[range]) {
                    self.x[i as usize] -= v * xj;
                }
            }
        }

        // Gather, sorted by index; drop exact zeros (cancellation).
        out_idx.extend_from_slice(&self.topo);
        out_idx.sort_unstable();
        out_val.reserve(out_idx.len());
        let mut kept = 0usize;
        for read in 0..out_idx.len() {
            let j = out_idx[read];
            let v = self.x[j as usize];
            if v != 0.0 {
                out_idx[kept] = j;
                out_val.push(v);
                kept += 1;
            }
        }
        out_idx.truncate(kept);
        Ok(dropped)
    }

    /// The `eps > 0` engine of [`SolveWorkspace::solve_truncated`]:
    /// index-ordered substitution over a pending-node heap. A position is
    /// final when popped (see the public doc for the monotonicity
    /// argument), so truncation prunes discovery itself — the symbolic
    /// cost of the exact reach, which the DFS pays regardless of ε, never
    /// arises. This is what makes sparsified builds tractable on graphs
    /// whose *exact* inverses are the memory/time wall.
    #[allow(clippy::too_many_arguments)] // mirrors the mathematical signature
    fn solve_truncated_worklist(
        &mut self,
        t: &CscMatrix,
        triangle: Triangle,
        unit_diag: bool,
        b_idx: &[Index],
        b_val: &[f64],
        eps: f64,
        protect: Option<Index>,
        out_idx: &mut Vec<Index>,
        out_val: &mut Vec<f64>,
    ) -> Result<f64> {
        self.stamps.advance();
        // Drained fully on success; an early error (singular pivot) can
        // leave residue behind, so clear defensively.
        self.pending.clear();
        // Encode so the max-heap pops in dependency order: ascending
        // indices for Lower, descending for Upper.
        let enc = |i: Index| match triangle {
            Triangle::Lower => -(i as i64),
            Triangle::Upper => i as i64,
        };
        let dec = |key: i64| match triangle {
            Triangle::Lower => (-key) as Index,
            Triangle::Upper => key as Index,
        };
        for (&r, &v) in b_idx.iter().zip(b_val) {
            debug_assert!((r as usize) < self.n, "rhs index out of bounds");
            if self.stamps.is_marked(r as usize) {
                self.x[r as usize] += v;
            } else {
                self.stamps.mark(r as usize);
                self.x[r as usize] = v;
                self.pending.push(enc(r));
            }
        }
        let mut dropped = 0.0f64;
        while let Some(key) = self.pending.pop() {
            let j = dec(key);
            let mut xj = self.x[j as usize];
            if !unit_diag {
                let diag = diag_value(t, j, triangle).ok_or(SparseError::SingularPivot {
                    column: j as usize,
                    value: 0.0,
                })?;
                if diag == 0.0 {
                    return Err(SparseError::SingularPivot { column: j as usize, value: 0.0 });
                }
                xj /= diag;
            }
            if xj == 0.0 {
                continue; // exact cancellation: not stored, nothing propagates
            }
            if xj.abs() < eps && protect != Some(j) {
                dropped += xj.abs();
                continue; // truncated: the downstream subtree is never discovered
            }
            out_idx.push(j);
            out_val.push(xj);
            let (rows, vals) = t.col(j);
            let range = strict_span(rows, j, triangle);
            for (&i, &v) in rows[range.clone()].iter().zip(&vals[range]) {
                if self.stamps.is_marked(i as usize) {
                    self.x[i as usize] -= v * xj;
                } else {
                    self.stamps.mark(i as usize);
                    self.x[i as usize] = -v * xj;
                    self.pending.push(enc(i));
                }
            }
        }
        if triangle == Triangle::Upper {
            // Upper pops descend; callers get ascending indices either way.
            out_idx.reverse();
            out_val.reverse();
        }
        Ok(dropped)
    }

    /// Convenience wrapper: solves `T x = e_j`.
    pub fn solve_unit(
        &mut self,
        t: &CscMatrix,
        triangle: Triangle,
        unit_diag: bool,
        j: Index,
        out_idx: &mut Vec<Index>,
        out_val: &mut Vec<f64>,
    ) -> Result<()> {
        self.solve(t, triangle, unit_diag, &[j], &[1.0], out_idx, out_val)
    }

    /// Convenience wrapper: solves `T x = e_j` with drop-tolerance
    /// truncation, protecting the seed position `j` (the diagonal of the
    /// inverse column) from truncation. Returns the dropped ℓ₁ mass.
    pub fn solve_unit_truncated(
        &mut self,
        t: &CscMatrix,
        triangle: Triangle,
        unit_diag: bool,
        j: Index,
        eps: f64,
        out_idx: &mut Vec<Index>,
        out_val: &mut Vec<f64>,
    ) -> Result<f64> {
        self.solve_truncated(t, triangle, unit_diag, &[j], &[1.0], eps, Some(j), out_idx, out_val)
    }
}

/// Strictly-below (Lower) or strictly-above (Upper) entries of column `j`,
/// as a row-index slice. Relies on columns being sorted.
#[inline]
fn strict_range(t: &CscMatrix, j: Index, triangle: Triangle) -> &[Index] {
    let (rows, _) = t.col(j);
    let span = strict_span(rows, j, triangle);
    &rows[span]
}

#[inline]
fn strict_span(rows: &[Index], j: Index, triangle: Triangle) -> std::ops::Range<usize> {
    match triangle {
        Triangle::Lower => rows.partition_point(|&r| r <= j)..rows.len(),
        Triangle::Upper => 0..rows.partition_point(|&r| r < j),
    }
}

/// The stored diagonal entry of column `j`, if present.
#[inline]
fn diag_value(t: &CscMatrix, j: Index, _triangle: Triangle) -> Option<f64> {
    t.get(j, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense reference forward substitution for unit-lower `L` (diag absent).
    fn dense_lower_unit_solve(l: &CscMatrix, b: &[f64]) -> Vec<f64> {
        let n = l.nrows();
        let d = l.to_dense();
        let mut x = b.to_vec();
        for j in 0..n {
            let xj = x[j];
            for i in j + 1..n {
                x[i] -= d[i][j] * xj;
            }
        }
        x
    }

    fn dense_upper_solve(u: &CscMatrix, b: &[f64]) -> Vec<f64> {
        let n = u.nrows();
        let d = u.to_dense();
        let mut x = b.to_vec();
        for j in (0..n).rev() {
            x[j] /= d[j][j];
            let xj = x[j];
            for i in 0..j {
                x[i] -= d[i][j] * xj;
            }
        }
        x
    }

    fn to_dense_vec(n: usize, idx: &[Index], val: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for (&i, &v) in idx.iter().zip(val) {
            x[i as usize] = v;
        }
        x
    }

    fn approx_eq(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() <= 1e-12 * (1.0 + y.abs()), "idx {i}: {x} vs {y}");
        }
    }

    #[test]
    fn lower_unit_sparse_rhs() {
        // L (diag implicit):
        // [.    ]
        // [2 .  ]
        // [0 3 .]
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[0], &[1.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(3, &oi, &ov);
        approx_eq(&x, &dense_lower_unit_solve(&l, &[1.0, 0.0, 0.0]));
        assert_eq!(oi, vec![0, 1, 2]); // reach of node 0 is everything
    }

    #[test]
    fn lower_unit_pattern_is_reachability() {
        // chain 0 -> 1, isolated 2
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[2], &[5.0], &mut oi, &mut ov).unwrap();
        assert_eq!(oi, vec![2]);
        assert_eq!(ov, vec![5.0]);
    }

    #[test]
    fn upper_with_diag() {
        // U:
        // [2 1 0]
        // [0 4 5]
        // [0 0 8]
        let u = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0), (1, 2, 5.0), (2, 2, 8.0)],
        )
        .unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&u, Triangle::Upper, false, &[2], &[8.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(3, &oi, &ov);
        approx_eq(&x, &dense_upper_solve(&u, &[0.0, 0.0, 8.0]));
    }

    #[test]
    fn singular_pivot_detected() {
        // upper matrix missing diagonal at column 1
        let u = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(2);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        let err = ws.solve(&u, Triangle::Upper, false, &[1], &[1.0], &mut oi, &mut ov).unwrap_err();
        assert!(matches!(err, SparseError::SingularPivot { column: 1, .. }));
    }

    #[test]
    fn duplicate_rhs_indices_accumulate() {
        let l = CscMatrix::from_triplets(2, 2, &[(1, 0, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(2);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[0, 0], &[1.0, 2.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(2, &oi, &ov);
        approx_eq(&x, &[3.0, -3.0]);
    }

    #[test]
    fn workspace_reuse_is_clean() {
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let mut ws = SolveWorkspace::new(3);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[0], &[1.0], &mut oi, &mut ov).unwrap();
        // Second solve with a different RHS must not see stale state.
        ws.solve(&l, Triangle::Lower, true, &[1], &[1.0], &mut oi, &mut ov).unwrap();
        let x = to_dense_vec(3, &oi, &ov);
        approx_eq(&x, &dense_lower_unit_solve(&l, &[0.0, 1.0, 0.0]));
    }

    #[test]
    fn explicit_diagonal_ignored_under_unit_flag() {
        // Same matrix with and without stored unit diagonal must solve alike.
        let no_diag = CscMatrix::from_triplets(2, 2, &[(1, 0, 2.0)]).unwrap();
        let with_diag =
            CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0), (1, 1, 1.0)]).unwrap();
        let mut ws = SolveWorkspace::new(2);
        let (mut i1, mut v1) = (Vec::new(), Vec::new());
        let (mut i2, mut v2) = (Vec::new(), Vec::new());
        ws.solve(&no_diag, Triangle::Lower, true, &[0], &[3.0], &mut i1, &mut v1).unwrap();
        ws.solve(&with_diag, Triangle::Lower, true, &[0], &[3.0], &mut i2, &mut v2).unwrap();
        assert_eq!(i1, i2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn zero_tolerance_truncated_solve_is_bit_identical() {
        let l = CscMatrix::from_triplets(4, 4, &[(1, 0, 0.5), (2, 1, 0.25), (3, 2, 2.0)]).unwrap();
        let mut ws = SolveWorkspace::new(4);
        let (mut i1, mut v1) = (Vec::new(), Vec::new());
        let (mut i2, mut v2) = (Vec::new(), Vec::new());
        ws.solve(&l, Triangle::Lower, true, &[0], &[1.0], &mut i1, &mut v1).unwrap();
        let dropped = ws
            .solve_unit_truncated(&l, Triangle::Lower, true, 0, 0.0, &mut i2, &mut v2)
            .unwrap();
        assert_eq!(dropped, 0.0);
        assert_eq!(i1, i2);
        let b1: Vec<u64> = v1.iter().map(|v| v.to_bits()).collect();
        let b2: Vec<u64> = v2.iter().map(|v| v.to_bits()).collect();
        assert_eq!(b1, b2);
    }

    #[test]
    fn truncation_drops_small_entries_and_records_mass() {
        // chain: x = [1, -0.5, 0.25, -0.125] for L with subdiagonal 0.5.
        let l = CscMatrix::from_triplets(
            4,
            4,
            &[(1, 0, 0.5), (2, 1, 0.5), (3, 2, 0.5)],
        )
        .unwrap();
        let mut ws = SolveWorkspace::new(4);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        // eps = 0.3 kills x_2 = 0.25 before it propagates, so x_3 (which
        // only depends on x_2) never appears at all.
        let dropped =
            ws.solve_unit_truncated(&l, Triangle::Lower, true, 0, 0.3, &mut oi, &mut ov).unwrap();
        assert_eq!(oi, vec![0, 1]);
        assert_eq!(ov, vec![1.0, -0.5]);
        assert!((dropped - 0.25).abs() < 1e-15, "dropped {dropped}");
    }

    #[test]
    fn truncation_protects_the_seed_entry() {
        // U with large diagonal: the seed x_1 = 1/8 is far below eps but
        // must survive because it is the protected diagonal entry.
        let u = CscMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 1, 8.0)]).unwrap();
        let mut ws = SolveWorkspace::new(2);
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        let dropped =
            ws.solve_unit_truncated(&u, Triangle::Upper, false, 1, 0.5, &mut oi, &mut ov).unwrap();
        assert_eq!(oi, vec![1]);
        assert_eq!(ov, vec![0.125]);
        // x_0 = -(U_01 * x_1) / U_00 = -1/32 was dropped.
        assert!((dropped - 1.0 / 32.0).abs() < 1e-15, "dropped {dropped}");
    }

    #[test]
    fn worklist_solve_matches_dfs_solve_when_nothing_drops() {
        // eps = 1e-300 routes the value-driven worklist engine, but no
        // entry of these well-scaled systems can fall below it, so the
        // result must carry the DFS solve's exact pattern and values
        // (equal up to the accumulation-order rounding documented on
        // `solve_truncated`).
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let n = rng.gen_range(2..24usize);
            let mut lo = Vec::new();
            let mut up = Vec::new();
            for j in 0..n as Index {
                up.push((j, j, rng.gen_range(1.0..2.0)));
                for i in (j + 1)..n as Index {
                    if rng.gen_bool(0.3) {
                        lo.push((i, j, rng.gen_range(-2.0..2.0)));
                        up.push((j, i, rng.gen_range(-2.0..2.0)));
                    }
                }
            }
            let l = CscMatrix::from_triplets(n, n, &lo).unwrap();
            let u = CscMatrix::from_triplets(n, n, &up).unwrap();
            let mut ws = SolveWorkspace::new(n);
            for (m, tri, unit) in [(&l, Triangle::Lower, true), (&u, Triangle::Upper, false)] {
                let seed = rng.gen_range(0..n) as Index;
                let (mut ei, mut ev) = (Vec::new(), Vec::new());
                let (mut wi, mut wv) = (Vec::new(), Vec::new());
                ws.solve(m, tri, unit, &[seed], &[1.0], &mut ei, &mut ev).unwrap();
                let dropped = ws
                    .solve_unit_truncated(m, tri, unit, seed, 1e-300, &mut wi, &mut wv)
                    .unwrap();
                assert_eq!(dropped, 0.0, "trial {trial}");
                assert_eq!(ei, wi, "trial {trial} {tri:?}: pattern diverged");
                for (k, (a, b)) in ev.iter().zip(&wv).enumerate() {
                    assert!(
                        (a - b).abs() <= 1e-12 * (1.0 + b.abs()),
                        "trial {trial} {tri:?} entry {k}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn random_lower_matches_dense_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..30 {
            let n = rng.gen_range(1..24usize);
            let mut trips = Vec::new();
            for j in 0..n as Index {
                for i in (j + 1)..n as Index {
                    if rng.gen_bool(0.3) {
                        trips.push((i, j, rng.gen_range(-2.0..2.0)));
                    }
                }
            }
            let l = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let k = rng.gen_range(1..=n);
            let mut b_idx: Vec<Index> = (0..n as Index).collect();
            // random subset as RHS
            for i in (1..b_idx.len()).rev() {
                let j = rng.gen_range(0..=i);
                b_idx.swap(i, j);
            }
            b_idx.truncate(k);
            let b_val: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut dense_b = vec![0.0; n];
            for (&i, &v) in b_idx.iter().zip(&b_val) {
                dense_b[i as usize] += v;
            }
            let mut ws = SolveWorkspace::new(n);
            let (mut oi, mut ov) = (Vec::new(), Vec::new());
            ws.solve(&l, Triangle::Lower, true, &b_idx, &b_val, &mut oi, &mut ov).unwrap();
            let x = to_dense_vec(n, &oi, &ov);
            let expect = dense_lower_unit_solve(&l, &dense_b);
            for (i, (a, e)) in x.iter().zip(&expect).enumerate() {
                assert!((a - e).abs() < 1e-9, "trial {trial} idx {i}: {a} vs {e}");
            }
        }
    }
}
