//! Sparse inverses of triangular factors (Equations (4)–(5) of the paper).
//!
//! `L⁻¹` and `U⁻¹` are computed column by column: column `j` of `T⁻¹` is the
//! solution of `T x = e_j`, obtained with the Gilbert–Peierls sparse solve
//! so each column costs time proportional to its own nonzero count. The
//! inverse of a triangular matrix is triangular with the same orientation;
//! how *sparse* it is depends entirely on the node ordering — this is the
//! quantity the paper's reordering heuristics (degree / cluster / hybrid)
//! minimise and that Figure 5 measures.

use crate::{CscMatrix, Index, Result, SolveWorkspace, SparseError, Triangle};

/// Inverts a unit lower triangular matrix given its strictly-lower part
/// (diagonal implicit, as produced by [`crate::sparse_lu`]).
///
/// The returned matrix stores the unit diagonal **explicitly**, so its
/// column `q` is directly the vector `L⁻¹ e_q` used at query time.
pub fn invert_lower_unit(l: &CscMatrix) -> Result<CscMatrix> {
    invert(l, Triangle::Lower, true)
}

/// Inverts an upper triangular matrix with stored diagonal.
pub fn invert_upper(u: &CscMatrix) -> Result<CscMatrix> {
    invert(u, Triangle::Upper, false)
}

fn invert(t: &CscMatrix, triangle: Triangle, unit_diag: bool) -> Result<CscMatrix> {
    let n = t.nrows();
    if t.nrows() != t.ncols() {
        return Err(SparseError::NotSquare { nrows: t.nrows(), ncols: t.ncols() });
    }
    let mut ws = SolveWorkspace::new(n);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<Index> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let (mut xi, mut xv) = (Vec::new(), Vec::new());
    for j in 0..n as Index {
        ws.solve_unit(t, triangle, unit_diag, j, &mut xi, &mut xv)?;
        row_idx.extend_from_slice(&xi);
        values.extend_from_slice(&xv);
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
}

/// Total stored entries of the pair `(L⁻¹, U⁻¹)` — the numerator of the
/// Figure 5 ratio.
pub fn inverse_nnz(l_inv: &CscMatrix, u_inv: &CscMatrix) -> usize {
    l_inv.nnz() + u_inv.nnz()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_lu;

    fn assert_is_identity(product: &[Vec<f64>], tol: f64) {
        for (i, row) in product.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < tol, "({i},{j}) = {v}");
            }
        }
    }

    fn dense_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = a.len();
        let mut out = vec![vec![0.0; n]; n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i][k];
                if aik != 0.0 {
                    for j in 0..n {
                        out[i][j] += aik * b[k][j];
                    }
                }
            }
        }
        out
    }

    /// Adds an implicit unit diagonal to a dense strictly-lower matrix.
    fn with_unit_diag(mut d: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        d
    }

    #[test]
    fn chain_lower_inverse_is_all_ones() {
        // L = I - subdiagonal(-1): L^{-1} is lower triangular of all ones.
        let n = 5;
        let trips: Vec<(Index, Index, f64)> =
            (0..n - 1).map(|j| (j as Index + 1, j as Index, -1.0)).collect();
        let l = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let inv = invert_lower_unit(&l).unwrap();
        for c in 0..n as Index {
            let (rows, vals) = inv.col(c);
            assert_eq!(rows.len(), n - c as usize);
            assert!(vals.iter().all(|&v| (v - 1.0).abs() < 1e-14));
        }
    }

    #[test]
    fn lower_inverse_times_matrix_is_identity() {
        let l = CscMatrix::from_triplets(4, 4, &[(1, 0, 0.5), (2, 0, -0.25), (3, 2, 2.0), (2, 1, 1.0)])
            .unwrap();
        let inv = invert_lower_unit(&l).unwrap();
        let product = dense_mul(&inv.to_dense(), &with_unit_diag(l.to_dense()));
        assert_is_identity(&product, 1e-12);
    }

    #[test]
    fn upper_inverse_times_matrix_is_identity() {
        let u = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0), (0, 2, -1.0), (1, 2, 0.5), (2, 2, 0.25)],
        )
        .unwrap();
        let inv = invert_upper(&u).unwrap();
        let product = dense_mul(&inv.to_dense(), &u.to_dense());
        assert_is_identity(&product, 1e-12);
    }

    #[test]
    fn inverse_diagonals_are_explicit() {
        let l = CscMatrix::from_triplets(3, 3, &[(2, 0, 1.0)]).unwrap();
        let inv = invert_lower_unit(&l).unwrap();
        for j in 0..3 {
            assert_eq!(inv.get(j, j), Some(1.0));
        }
        let u = CscMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (1, 1, 8.0)]).unwrap();
        let uinv = invert_upper(&u).unwrap();
        assert_eq!(uinv.get(0, 0), Some(0.25));
        assert_eq!(uinv.get(1, 1), Some(0.125));
    }

    #[test]
    fn singular_upper_rejected() {
        let u = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(invert_upper(&u), Err(SparseError::SingularPivot { .. })));
    }

    #[test]
    fn inverses_reconstruct_w_inverse() {
        // Verify c * U^{-1} (L^{-1} e_q) == W^{-1} e_q * c for an RWR-like W.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let n = 12;
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        let mut col_sum = vec![0.0f64; n];
        for j in 0..n as Index {
            for i in 0..n as Index {
                if i != j && rng.gen_bool(0.3) {
                    let v: f64 = -rng.gen_range(0.01..0.5);
                    trips.push((i, j, v));
                    col_sum[j as usize] += v.abs();
                }
            }
        }
        for (j, &cs) in col_sum.iter().enumerate() {
            trips.push((j as Index, j as Index, cs + 0.5));
        }
        let w = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let f = sparse_lu(&w).unwrap();
        let linv = invert_lower_unit(&f.l).unwrap();
        let uinv = invert_upper(&f.u).unwrap();
        for q in 0..n as Index {
            // x = U^{-1} (L^{-1} e_q)
            let (lq_rows, lq_vals) = linv.col(q);
            let mut y = vec![0.0; n];
            for (&r, &v) in lq_rows.iter().zip(lq_vals) {
                y[r as usize] = v;
            }
            let x = uinv.matvec(&y);
            // reference: dense solve of W x = e_q
            let mut e = vec![0.0; n];
            e[q as usize] = 1.0;
            let reference = f.solve_dense(&e).unwrap();
            for (a, b) in x.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn inverse_nnz_helper() {
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 1.0)]).unwrap();
        let li = invert_lower_unit(&l).unwrap();
        let u = CscMatrix::identity(3);
        let ui = invert_upper(&u).unwrap();
        assert_eq!(inverse_nnz(&li, &ui), li.nnz() + ui.nnz());
        assert_eq!(ui.nnz(), 3);
        assert_eq!(li.nnz(), 4); // 3 diagonal ones + one fill entry
    }
}
