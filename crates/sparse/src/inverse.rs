//! Sparse inverses of triangular factors (Equations (4)–(5) of the paper).
//!
//! `L⁻¹` and `U⁻¹` are computed column by column: column `j` of `T⁻¹` is the
//! solution of `T x = e_j`, obtained with the Gilbert–Peierls sparse solve
//! so each column costs time proportional to its own nonzero count. The
//! inverse of a triangular matrix is triangular with the same orientation;
//! how *sparse* it is depends entirely on the node ordering — this is the
//! quantity the paper's reordering heuristics (degree / cluster / hybrid)
//! minimise and that Figure 5 measures.
//!
//! Columns are mutually independent (no column's solve reads another
//! column of the inverse), which makes the inversion embarrassingly
//! parallel: [`invert_lower_unit_with`] / [`invert_upper_with`] fan the
//! columns out over a work-stealing chunk cursor, one [`SolveWorkspace`]
//! per worker, and gather the per-worker column blocks back in column
//! order — so the result is **bit-identical** to the sequential inversion
//! at every thread count.

use crate::{CscMatrix, Index, Result, SolveWorkspace, SparseError, Triangle};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Options for the triangular-inversion driver.
#[derive(Debug, Clone, Copy)]
pub struct InvertOptions {
    /// Worker threads: `0` means "one per available hardware thread"
    /// (`std::thread::available_parallelism`), `1` runs sequentially on
    /// the calling thread. Any thread count produces bit-identical output.
    pub threads: usize,
}

impl Default for InvertOptions {
    fn default() -> Self {
        InvertOptions { threads: 1 }
    }
}

impl InvertOptions {
    /// Sequential inversion on the calling thread.
    pub fn sequential() -> Self {
        InvertOptions { threads: 1 }
    }

    /// One worker per available hardware thread.
    pub fn parallel() -> Self {
        InvertOptions { threads: 0 }
    }

    /// Resolves the worker count against the column count: `0` = auto,
    /// always at least 1, never more workers than columns.
    pub fn resolved_threads(&self, num_cols: usize) -> usize {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.threads
        };
        threads.max(1).min(num_cols.max(1))
    }
}

/// Inverts a unit lower triangular matrix given its strictly-lower part
/// (diagonal implicit, as produced by [`crate::sparse_lu`]).
///
/// The returned matrix stores the unit diagonal **explicitly**, so its
/// column `q` is directly the vector `L⁻¹ e_q` used at query time.
pub fn invert_lower_unit(l: &CscMatrix) -> Result<CscMatrix> {
    invert(l, Triangle::Lower, true, InvertOptions::sequential())
}

/// Inverts an upper triangular matrix with stored diagonal.
pub fn invert_upper(u: &CscMatrix) -> Result<CscMatrix> {
    invert(u, Triangle::Upper, false, InvertOptions::sequential())
}

/// [`invert_lower_unit`] with an explicit thread count.
pub fn invert_lower_unit_with(l: &CscMatrix, options: InvertOptions) -> Result<CscMatrix> {
    invert(l, Triangle::Lower, true, options)
}

/// [`invert_upper`] with an explicit thread count.
pub fn invert_upper_with(u: &CscMatrix, options: InvertOptions) -> Result<CscMatrix> {
    invert(u, Triangle::Upper, false, options)
}

fn invert(
    t: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    options: InvertOptions,
) -> Result<CscMatrix> {
    let n = t.nrows();
    if t.nrows() != t.ncols() {
        return Err(SparseError::NotSquare { nrows: t.nrows(), ncols: t.ncols() });
    }
    let threads = options.resolved_threads(n);
    if threads <= 1 {
        invert_sequential(t, triangle, unit_diag)
    } else {
        invert_parallel(t, triangle, unit_diag, threads)
    }
}

fn invert_sequential(t: &CscMatrix, triangle: Triangle, unit_diag: bool) -> Result<CscMatrix> {
    let n = t.nrows();
    let mut ws = SolveWorkspace::new(n);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<Index> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let (mut xi, mut xv) = (Vec::new(), Vec::new());
    for j in 0..n as Index {
        ws.solve_unit(t, triangle, unit_diag, j, &mut xi, &mut xv)?;
        row_idx.extend_from_slice(&xi);
        values.extend_from_slice(&xv);
        col_ptr.push(row_idx.len());
    }
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
}

/// A contiguous run of solved columns, produced by one worker claim.
struct ColumnBlock {
    /// First column covered by the block.
    first: usize,
    /// Nonzero count per column, in column order.
    col_lens: Vec<usize>,
    /// Concatenated sorted row indices of the block's columns.
    rows: Vec<Index>,
    /// Values parallel to `rows`.
    vals: Vec<f64>,
}

/// Columns per cursor claim. Column costs are skewed (a column's solve is
/// proportional to its reach, which grows towards one end of the
/// triangle), so claims must stay small enough for the fast workers to
/// steal the cheap tail; large enough that the cursor isn't contended.
pub(crate) fn claim_chunk(n: usize, threads: usize) -> usize {
    (n / (threads * 32)).clamp(1, 256)
}

fn invert_parallel(
    t: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    threads: usize,
) -> Result<CscMatrix> {
    let n = t.nrows();
    let chunk = claim_chunk(n, threads);
    let cursor = AtomicUsize::new(0);

    // Each worker returns its solved blocks plus the first error it hit
    // (the error poisons the cursor so other workers stop claiming).
    type WorkerOutput = (Vec<ColumnBlock>, Option<(usize, SparseError)>);
    let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = SolveWorkspace::new(n);
                    let (mut xi, mut xv) = (Vec::new(), Vec::new());
                    let mut blocks: Vec<ColumnBlock> = Vec::new();
                    let mut error: Option<(usize, SparseError)> = None;
                    'claims: loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        let mut block = ColumnBlock {
                            first: start,
                            col_lens: Vec::with_capacity(end - start),
                            rows: Vec::new(),
                            vals: Vec::new(),
                        };
                        for j in start..end {
                            match ws.solve_unit(
                                t,
                                triangle,
                                unit_diag,
                                j as Index,
                                &mut xi,
                                &mut xv,
                            ) {
                                Ok(()) => {
                                    block.col_lens.push(xi.len());
                                    block.rows.extend_from_slice(&xi);
                                    block.vals.extend_from_slice(&xv);
                                }
                                Err(e) => {
                                    error = Some((j, e));
                                    // Poison the cursor: the inversion is
                                    // doomed, remaining columns are wasted
                                    // work. Chunks are claimed in increasing
                                    // order, so every chunk at or below the
                                    // lowest-error chunk was already handed
                                    // out — the lowest-column error is still
                                    // found deterministically.
                                    cursor.fetch_max(n, Ordering::Relaxed);
                                    break 'claims;
                                }
                            }
                        }
                        blocks.push(block);
                    }
                    (blocks, error)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("inversion worker panicked")).collect()
    });

    // Deterministic error: the sequential path reports the lowest singular
    // column; claims go out in increasing order, so the chunk containing
    // that column was processed (up to the error) by whoever claimed it.
    let mut first_error: Option<(usize, SparseError)> = None;
    let mut blocks: Vec<ColumnBlock> = Vec::new();
    for (worker_blocks, error) in worker_outputs {
        blocks.extend(worker_blocks);
        if let Some((col, e)) = error {
            match &first_error {
                Some((lowest, _)) if *lowest <= col => {}
                _ => first_error = Some((col, e)),
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }

    // Gather the blocks in column order; concatenation reproduces exactly
    // the arrays the sequential loop appends one column at a time.
    blocks.sort_unstable_by_key(|b| b.first);
    let total_nnz: usize = blocks.iter().map(|b| b.rows.len()).sum();
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<Index> = Vec::with_capacity(total_nnz);
    let mut values: Vec<f64> = Vec::with_capacity(total_nnz);
    let mut next_col = 0usize;
    for block in &blocks {
        debug_assert_eq!(block.first, next_col, "blocks must tile the column range");
        next_col += block.col_lens.len();
        for &len in &block.col_lens {
            col_ptr.push(col_ptr.last().expect("non-empty") + len);
        }
        row_idx.extend_from_slice(&block.rows);
        values.extend_from_slice(&block.vals);
    }
    debug_assert_eq!(next_col, n, "every column must be covered");
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
}

/// Re-solves an arbitrary subset of inverse columns: for each `j` in
/// `columns` (sorted strictly ascending), the solution of `T x = e_j` —
/// exactly the per-column solve the full inversion runs, so every
/// returned column is **bit-identical** to the corresponding column of
/// [`invert_lower_unit`] / [`invert_upper`] output. This is the numeric
/// core of the dynamic-update engine: after the reach analysis
/// ([`crate::reach::inverse_dirty_columns`]) bounds the dirty set, only
/// these columns are paid for.
///
/// The subset fans out over the same work-stealing chunk cursor as the
/// full inversion (one [`SolveWorkspace`] per worker, `threads` as in
/// [`InvertOptions`]), and errors report the lowest failing column at
/// every thread count.
pub fn invert_columns_with(
    t: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    columns: &[Index],
    options: InvertOptions,
) -> Result<Vec<crate::csc::ColumnUpdate>> {
    let n = t.nrows();
    if t.nrows() != t.ncols() {
        return Err(SparseError::NotSquare { nrows: t.nrows(), ncols: t.ncols() });
    }
    for (k, &c) in columns.iter().enumerate() {
        if (c as usize) >= n {
            return Err(SparseError::Malformed(format!(
                "column {c} out of bounds for dimension {n}"
            )));
        }
        if k > 0 && columns[k - 1] >= c {
            return Err(SparseError::Malformed(
                "columns must be sorted strictly ascending".into(),
            ));
        }
    }
    let threads = options.resolved_threads(columns.len());
    if threads <= 1 {
        let mut ws = SolveWorkspace::new(n);
        let (mut xi, mut xv) = (Vec::new(), Vec::new());
        let mut out = Vec::with_capacity(columns.len());
        for &j in columns {
            ws.solve_unit(t, triangle, unit_diag, j, &mut xi, &mut xv)?;
            out.push(crate::csc::ColumnUpdate { col: j, rows: xi.clone(), vals: xv.clone() });
        }
        return Ok(out);
    }

    let chunk = claim_chunk(columns.len(), threads);
    let cursor = AtomicUsize::new(0);
    type WorkerOutput = (Vec<crate::csc::ColumnUpdate>, Option<(usize, SparseError)>);
    let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = SolveWorkspace::new(n);
                    let (mut xi, mut xv) = (Vec::new(), Vec::new());
                    let mut solved: Vec<crate::csc::ColumnUpdate> = Vec::new();
                    let mut error: Option<(usize, SparseError)> = None;
                    'claims: loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= columns.len() {
                            break;
                        }
                        let end = (start + chunk).min(columns.len());
                        for &j in &columns[start..end] {
                            match ws.solve_unit(t, triangle, unit_diag, j, &mut xi, &mut xv) {
                                Ok(()) => solved.push(crate::csc::ColumnUpdate {
                                    col: j,
                                    rows: xi.clone(),
                                    vals: xv.clone(),
                                }),
                                Err(e) => {
                                    error = Some((j as usize, e));
                                    cursor.fetch_max(columns.len(), Ordering::Relaxed);
                                    break 'claims;
                                }
                            }
                        }
                    }
                    (solved, error)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("column-solve worker panicked")).collect()
    });

    let mut first_error: Option<(usize, SparseError)> = None;
    let mut out: Vec<crate::csc::ColumnUpdate> = Vec::with_capacity(columns.len());
    for (solved, error) in worker_outputs {
        out.extend(solved);
        if let Some((col, e)) = error {
            match &first_error {
                Some((lowest, _)) if *lowest <= col => {}
                _ => first_error = Some((col, e)),
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    out.sort_unstable_by_key(|u| u.col);
    Ok(out)
}

/// Total stored entries of the pair `(L⁻¹, U⁻¹)` — the numerator of the
/// Figure 5 ratio.
pub fn inverse_nnz(l_inv: &CscMatrix, u_inv: &CscMatrix) -> usize {
    l_inv.nnz() + u_inv.nnz()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_lu;

    fn assert_is_identity(product: &[Vec<f64>], tol: f64) {
        for (i, row) in product.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((v - expect).abs() < tol, "({i},{j}) = {v}");
            }
        }
    }

    fn dense_mul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = a.len();
        let mut out = vec![vec![0.0; n]; n];
        for i in 0..n {
            for k in 0..n {
                let aik = a[i][k];
                if aik != 0.0 {
                    for j in 0..n {
                        out[i][j] += aik * b[k][j];
                    }
                }
            }
        }
        out
    }

    /// Adds an implicit unit diagonal to a dense strictly-lower matrix.
    fn with_unit_diag(mut d: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        d
    }

    #[test]
    fn chain_lower_inverse_is_all_ones() {
        // L = I - subdiagonal(-1): L^{-1} is lower triangular of all ones.
        let n = 5;
        let trips: Vec<(Index, Index, f64)> =
            (0..n - 1).map(|j| (j as Index + 1, j as Index, -1.0)).collect();
        let l = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let inv = invert_lower_unit(&l).unwrap();
        for c in 0..n as Index {
            let (rows, vals) = inv.col(c);
            assert_eq!(rows.len(), n - c as usize);
            assert!(vals.iter().all(|&v| (v - 1.0).abs() < 1e-14));
        }
    }

    #[test]
    fn lower_inverse_times_matrix_is_identity() {
        let l = CscMatrix::from_triplets(4, 4, &[(1, 0, 0.5), (2, 0, -0.25), (3, 2, 2.0), (2, 1, 1.0)])
            .unwrap();
        let inv = invert_lower_unit(&l).unwrap();
        let product = dense_mul(&inv.to_dense(), &with_unit_diag(l.to_dense()));
        assert_is_identity(&product, 1e-12);
    }

    #[test]
    fn upper_inverse_times_matrix_is_identity() {
        let u = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 4.0), (0, 2, -1.0), (1, 2, 0.5), (2, 2, 0.25)],
        )
        .unwrap();
        let inv = invert_upper(&u).unwrap();
        let product = dense_mul(&inv.to_dense(), &u.to_dense());
        assert_is_identity(&product, 1e-12);
    }

    #[test]
    fn inverse_diagonals_are_explicit() {
        let l = CscMatrix::from_triplets(3, 3, &[(2, 0, 1.0)]).unwrap();
        let inv = invert_lower_unit(&l).unwrap();
        for j in 0..3 {
            assert_eq!(inv.get(j, j), Some(1.0));
        }
        let u = CscMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (1, 1, 8.0)]).unwrap();
        let uinv = invert_upper(&u).unwrap();
        assert_eq!(uinv.get(0, 0), Some(0.25));
        assert_eq!(uinv.get(1, 1), Some(0.125));
    }

    #[test]
    fn singular_upper_rejected() {
        let u = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(invert_upper(&u), Err(SparseError::SingularPivot { .. })));
    }

    #[test]
    fn inverses_reconstruct_w_inverse() {
        // Verify c * U^{-1} (L^{-1} e_q) == W^{-1} e_q * c for an RWR-like W.
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let n = 12;
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        let mut col_sum = vec![0.0f64; n];
        for j in 0..n as Index {
            for i in 0..n as Index {
                if i != j && rng.gen_bool(0.3) {
                    let v: f64 = -rng.gen_range(0.01..0.5);
                    trips.push((i, j, v));
                    col_sum[j as usize] += v.abs();
                }
            }
        }
        for (j, &cs) in col_sum.iter().enumerate() {
            trips.push((j as Index, j as Index, cs + 0.5));
        }
        let w = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let f = sparse_lu(&w).unwrap();
        let linv = invert_lower_unit(&f.l).unwrap();
        let uinv = invert_upper(&f.u).unwrap();
        for q in 0..n as Index {
            // x = U^{-1} (L^{-1} e_q)
            let (lq_rows, lq_vals) = linv.col(q);
            let mut y = vec![0.0; n];
            for (&r, &v) in lq_rows.iter().zip(lq_vals) {
                y[r as usize] = v;
            }
            let x = uinv.matvec(&y);
            // reference: dense solve of W x = e_q
            let mut e = vec![0.0; n];
            e[q as usize] = 1.0;
            let reference = f.solve_dense(&e).unwrap();
            for (a, b) in x.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
        }
    }

    /// Random triangular factors from RWR-like matrices: the parallel
    /// driver must reproduce the sequential arrays *bit for bit* at every
    /// thread count, including counts far above the column count.
    #[test]
    fn parallel_inversion_is_bit_identical() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for trial in 0..8 {
            let n = rng.gen_range(5..60usize);
            let mut trips: Vec<(Index, Index, f64)> = Vec::new();
            let mut col_sum = vec![0.0f64; n];
            for j in 0..n as Index {
                for i in 0..n as Index {
                    if i != j && rng.gen_bool(0.25) {
                        let v: f64 = -rng.gen_range(0.01..0.6);
                        trips.push((i, j, v));
                        col_sum[j as usize] += v.abs();
                    }
                }
            }
            for (j, &cs) in col_sum.iter().enumerate() {
                trips.push((j as Index, j as Index, cs + 0.7));
            }
            let w = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let f = sparse_lu(&w).unwrap();
            let linv_seq = invert_lower_unit(&f.l).unwrap();
            let uinv_seq = invert_upper(&f.u).unwrap();
            for threads in [0usize, 2, 3, 7, 64] {
                let opts = InvertOptions { threads };
                let linv_par = invert_lower_unit_with(&f.l, opts).unwrap();
                let uinv_par = invert_upper_with(&f.u, opts).unwrap();
                assert_bit_identical(&linv_seq, &linv_par, trial, threads);
                assert_bit_identical(&uinv_seq, &uinv_par, trial, threads);
            }
        }
    }

    fn assert_bit_identical(a: &CscMatrix, b: &CscMatrix, trial: usize, threads: usize) {
        let (ap, ai, av) = a.raw();
        let (bp, bi, bv) = b.raw();
        assert_eq!(ap, bp, "trial {trial} threads {threads}: col_ptr differs");
        assert_eq!(ai, bi, "trial {trial} threads {threads}: row_idx differs");
        let abits: Vec<u64> = av.iter().map(|v| v.to_bits()).collect();
        let bbits: Vec<u64> = bv.iter().map(|v| v.to_bits()).collect();
        assert_eq!(abits, bbits, "trial {trial} threads {threads}: values differ");
    }

    #[test]
    fn parallel_error_is_lowest_singular_column() {
        // Diagonal missing at columns 3 and 7: every thread count must
        // report column 3, like the sequential path.
        let n = 12;
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        for j in 0..n as Index {
            if j != 3 && j != 7 {
                trips.push((j, j, 2.0));
            }
            if j > 0 {
                trips.push((j - 1, j, 1.0));
            }
        }
        let u = CscMatrix::from_triplets(n, n, &trips).unwrap();
        for threads in [1usize, 2, 4, 16] {
            let err = invert_upper_with(&u, InvertOptions { threads }).unwrap_err();
            assert!(
                matches!(err, SparseError::SingularPivot { column: 3, .. }),
                "threads {threads}: {err:?}"
            );
        }
    }

    #[test]
    fn invert_options_resolution() {
        assert!(InvertOptions::parallel().resolved_threads(100) >= 1);
        assert_eq!(InvertOptions::sequential().resolved_threads(100), 1);
        assert_eq!(InvertOptions { threads: 8 }.resolved_threads(3), 3);
        assert_eq!(InvertOptions { threads: 8 }.resolved_threads(0), 1);
        assert_eq!(InvertOptions::default().threads, 1);
    }

    #[test]
    fn claim_chunk_bounds() {
        assert_eq!(claim_chunk(10, 4), 1);
        assert!(claim_chunk(1_000_000, 2) <= 256);
        assert!(claim_chunk(0, 8) >= 1);
    }

    /// The subset driver's contract: every solved column is bit-identical
    /// to the same column of the full inversion, at every thread count.
    #[test]
    fn column_subset_solves_match_full_inversion() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..6 {
            let n = rng.gen_range(8..40usize);
            let mut trips: Vec<(Index, Index, f64)> = Vec::new();
            let mut col_sum = vec![0.0f64; n];
            for j in 0..n as Index {
                for i in 0..n as Index {
                    if i != j && rng.gen_bool(0.3) {
                        let v: f64 = -rng.gen_range(0.01..0.5);
                        trips.push((i, j, v));
                        col_sum[j as usize] += v.abs();
                    }
                }
            }
            for (j, &cs) in col_sum.iter().enumerate() {
                trips.push((j as Index, j as Index, cs + 0.6));
            }
            let w = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let f = sparse_lu(&w).unwrap();
            let linv = invert_lower_unit(&f.l).unwrap();
            let uinv = invert_upper(&f.u).unwrap();
            let subset: Vec<Index> = (0..n as Index).filter(|j| j % 3 != 1).collect();
            for threads in [1usize, 2, 5, 0] {
                let opts = InvertOptions { threads };
                let l_updates =
                    invert_columns_with(&f.l, Triangle::Lower, true, &subset, opts).unwrap();
                let u_updates =
                    invert_columns_with(&f.u, Triangle::Upper, false, &subset, opts).unwrap();
                for (updates, full) in [(&l_updates, &linv), (&u_updates, &uinv)] {
                    assert_eq!(updates.len(), subset.len());
                    for u in updates.iter() {
                        let (rows, vals) = full.col(u.col);
                        assert_eq!(u.rows.as_slice(), rows, "trial {trial} col {}", u.col);
                        for (a, b) in u.vals.iter().zip(vals) {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "trial {trial} col {} threads {threads}",
                                u.col
                            );
                        }
                    }
                }
            }
        }
    }

    /// Splicing re-solved columns into the old inverse reproduces the new
    /// full inversion exactly — the array-level core of the dynamic
    /// engine, on raw triangles.
    #[test]
    fn resolve_and_splice_reproduces_full_inversion() {
        let l_old =
            CscMatrix::from_triplets(4, 4, &[(1, 0, 0.5), (2, 1, 0.25), (3, 2, 0.125)]).unwrap();
        let l_new =
            CscMatrix::from_triplets(4, 4, &[(1, 0, 0.75), (2, 1, 0.25), (3, 2, 0.125)]).unwrap();
        let inv_old = invert_lower_unit(&l_old).unwrap();
        let inv_new = invert_lower_unit(&l_new).unwrap();
        let dirty = CscMatrix::diff_columns(&l_old, &l_new).unwrap();
        assert_eq!(dirty, vec![0]);
        let dirty_inverse = crate::reach::inverse_dirty_columns(&l_new, &dirty);
        let updates = invert_columns_with(
            &l_new,
            Triangle::Lower,
            true,
            &dirty_inverse,
            InvertOptions::sequential(),
        )
        .unwrap();
        let spliced = inv_old.splice_columns(&updates).unwrap();
        assert_eq!(spliced, inv_new);
    }

    #[test]
    fn column_subset_validation_and_errors() {
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 1.0)]).unwrap();
        let opts = InvertOptions::sequential();
        assert!(invert_columns_with(&l, Triangle::Lower, true, &[1, 0], opts).is_err());
        assert!(invert_columns_with(&l, Triangle::Lower, true, &[0, 0], opts).is_err());
        assert!(invert_columns_with(&l, Triangle::Lower, true, &[7], opts).is_err());
        assert!(invert_columns_with(&l, Triangle::Lower, true, &[], opts).unwrap().is_empty());
        // Singular column inside the subset: lowest failing column wins
        // at every thread count.
        let n = 10;
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        for j in 0..n as Index {
            if j != 2 && j != 6 {
                trips.push((j, j, 2.0));
            }
            if j > 0 {
                trips.push((j - 1, j, 1.0));
            }
        }
        let u = CscMatrix::from_triplets(n, n, &trips).unwrap();
        let subset: Vec<Index> = (0..n as Index).collect();
        for threads in [1usize, 2, 8] {
            let err = invert_columns_with(
                &u,
                Triangle::Upper,
                false,
                &subset,
                InvertOptions { threads },
            )
            .unwrap_err();
            assert!(
                matches!(err, SparseError::SingularPivot { column: 2, .. }),
                "threads {threads}: {err:?}"
            );
        }
    }

    #[test]
    fn inverse_nnz_helper() {
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, 1.0)]).unwrap();
        let li = invert_lower_unit(&l).unwrap();
        let u = CscMatrix::identity(3);
        let ui = invert_upper(&u).unwrap();
        assert_eq!(inverse_nnz(&li, &ui), li.nnz() + ui.nnz());
        assert_eq!(ui.nnz(), 3);
        assert_eq!(li.nnz(), 4); // 3 diagonal ones + one fill entry
    }
}
