//! Blocked CSR storage: the bandwidth-lean layout for the stored inverses.
//!
//! PR 3's measurements showed the k=50 hot path at scale 16 is DRAM-bound:
//! once `U⁻¹` outgrows cache, every gather streams the row's column
//! indices (4 bytes/nnz) plus stamps and values from memory, and the
//! kernels wait on bandwidth, not arithmetic. The exactness argument
//! (Lemmas 1/2 operate on the *values* of sparse `L⁻¹`/`U⁻¹` rows) does
//! not care how the indices are encoded — so [`BlockedCsr`] shrinks them.
//!
//! Column indices are split into **runs**: all consecutive nonzeros of a
//! row whose columns share the same 2¹⁶-wide aligned block are stored as
//! one run header (`u32` block anchor + `u32` end offset) plus one `u16`
//! **local delta** per nonzero (`column = anchor + delta`). Index traffic
//! per nonzero drops from 4 bytes to 2 bytes + 8·runs/nnz amortised —
//! for the fill-dominated inverse rows this is a ≥ 25 % cut in index
//! bytes (~50 % when rows span few blocks, which the reordering makes the
//! common case; a graph under 65 536 nodes needs exactly one run per
//! row). Values are the *same* `f64` array in the *same* order as the
//! flat layout, so every kernel that walks a row in position order
//! produces bit-identical sums.
//!
//! The decoding contract the gather kernels rely on: iterating a row's
//! runs in order and, within a run, its deltas in order yields exactly
//! the flat CSR column sequence (strictly ascending). The scalar gather
//! and the merge join below exploit that directly; the wide kernels
//! decode a row into a caller-owned scratch first
//! ([`decode_row_into`](BlockedCsr::decode_row_into)) and then run the
//! *same* slice kernels as the flat layout — which is what makes the two
//! layouts bit-identical under every kernel, not just the scalar one.

use crate::{CsrMatrix, Index, Result, ScatteredColumn, SparseError};

/// Width of one column block: deltas are `u16`, so a run covers columns
/// `[anchor, anchor + 2^16)` with `anchor` a multiple of `2^16`.
pub const BLOCK_COLS: u32 = 1 << 16;

/// Sparse rows with block-compressed column indices (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedCsr {
    nrows: usize,
    ncols: usize,
    /// Per-row nonzero span: `row_ptr[r]..row_ptr[r + 1]` into
    /// `deltas`/`values`.
    row_ptr: Vec<usize>,
    /// Per-row run span: `run_ptr[r]..run_ptr[r + 1]` into
    /// `run_base`/`run_end`.
    run_ptr: Vec<usize>,
    /// Aligned block anchor of each run (multiple of [`BLOCK_COLS`]).
    run_base: Vec<u32>,
    /// Exclusive end of each run as a *global* nonzero offset. The run's
    /// start is the previous run's end (or the row's `row_ptr` entry).
    run_end: Vec<u32>,
    /// Column offsets within the run's block: `col = base + delta`.
    deltas: Vec<u16>,
    /// Values, identical order to the flat layout.
    values: Vec<f64>,
}

impl BlockedCsr {
    /// Re-encodes a flat CSR matrix. Values move over untouched (same
    /// array order), only the index encoding changes. Fails when the
    /// matrix is too large for the run offsets (`nnz ≥ 2^32`, far beyond
    /// anything this system builds).
    pub fn from_csr(csr: CsrMatrix) -> Result<BlockedCsr> {
        if csr.nnz() > u32::MAX as usize {
            return Err(SparseError::Malformed(format!(
                "blocked layout limited to < 2^32 stored entries, got {}",
                csr.nnz()
            )));
        }
        let (nrows, ncols) = (csr.nrows(), csr.ncols());
        let (row_ptr, col_idx, values) = csr.into_raw_parts();
        let mut run_ptr = Vec::with_capacity(nrows + 1);
        let mut run_base = Vec::new();
        let mut run_end = Vec::new();
        let mut deltas = Vec::with_capacity(col_idx.len());
        run_ptr.push(0);
        for r in 0..nrows {
            let span = row_ptr[r]..row_ptr[r + 1];
            encode_row(&col_idx[span.clone()], span.start, &mut run_base, &mut run_end, &mut deltas);
            run_ptr.push(run_base.len());
        }
        Ok(BlockedCsr { nrows, ncols, row_ptr, run_ptr, run_base, run_end, deltas, values })
    }

    /// Replaces whole rows, returning a new matrix: rows named by a
    /// [`crate::csr::RowUpdate`] are **re-encoded** (the same per-row run
    /// encoder [`from_csr`](Self::from_csr) runs), every other row's
    /// deltas, values and run headers are copied over verbatim with only
    /// the global run offsets shifted — so the result is array-for-array
    /// identical to re-encoding the fully spliced flat matrix, at the
    /// cost of encoding work proportional to the dirty rows only.
    /// `updates` must be sorted by strictly increasing row.
    pub fn splice_rows(&self, updates: &[crate::csr::RowUpdate]) -> Result<BlockedCsr> {
        crate::csr::validate_row_updates(self.nrows, self.ncols, updates)?;
        let delta: isize = updates
            .iter()
            .map(|u| u.cols.len() as isize - self.row_nnz(u.row) as isize)
            .sum();
        let new_nnz = (self.nnz() as isize + delta) as usize;
        if new_nnz > u32::MAX as usize {
            return Err(SparseError::Malformed(format!(
                "blocked layout limited to < 2^32 stored entries, got {new_nnz}"
            )));
        }
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut run_ptr = Vec::with_capacity(self.nrows + 1);
        run_ptr.push(0usize);
        let mut run_base: Vec<u32> = Vec::new();
        let mut run_end: Vec<u32> = Vec::new();
        let mut deltas: Vec<u16> = Vec::with_capacity(new_nnz);
        let mut values: Vec<f64> = Vec::with_capacity(new_nnz);
        let mut up = updates.iter().peekable();
        for r in 0..self.nrows {
            match up.peek() {
                Some(u) if u.row as usize == r => {
                    let u = up.next().expect("peeked");
                    encode_row(&u.cols, deltas.len(), &mut run_base, &mut run_end, &mut deltas);
                    values.extend_from_slice(&u.vals);
                }
                _ => {
                    let span = self.row_ptr[r]..self.row_ptr[r + 1];
                    let shift = deltas.len() as isize - span.start as isize;
                    deltas.extend_from_slice(&self.deltas[span.clone()]);
                    values.extend_from_slice(&self.values[span]);
                    for k in self.run_ptr[r]..self.run_ptr[r + 1] {
                        run_base.push(self.run_base[k]);
                        run_end.push((self.run_end[k] as isize + shift) as u32);
                    }
                }
            }
            row_ptr.push(deltas.len());
            run_ptr.push(run_base.len());
        }
        Ok(BlockedCsr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            run_ptr,
            run_base,
            run_end,
            deltas,
            values,
        })
    }

    /// Rebuilds the flat CSR matrix (exact inverse of
    /// [`from_csr`](Self::from_csr), values bit-identical).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut col_idx = Vec::with_capacity(self.deltas.len());
        for r in 0..self.nrows as Index {
            self.for_each_col(r, |c| col_idx.push(c));
        }
        CsrMatrix::from_raw_parts(
            self.nrows,
            self.ncols,
            self.row_ptr.clone(),
            col_idx,
            self.values.clone(),
        )
        .expect("a valid blocked matrix decodes to a valid CSR matrix")
    }

    /// Builds from raw arrays, re-validating every structural invariant
    /// (the persistence load path). Rejects anything that would make a
    /// decode read out of bounds or produce non-ascending columns.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        run_ptr: Vec<usize>,
        run_base: Vec<u32>,
        run_end: Vec<u32>,
        deltas: Vec<u16>,
        values: Vec<f64>,
    ) -> Result<BlockedCsr> {
        let malformed = |msg: String| Err(SparseError::Malformed(msg));
        if row_ptr.len() != nrows + 1 || run_ptr.len() != nrows + 1 {
            return malformed("pointer array length mismatch".into());
        }
        if deltas.len() != values.len() {
            return malformed("delta/value length mismatch".into());
        }
        if row_ptr[0] != 0
            || run_ptr[0] != 0
            || *row_ptr.last().unwrap() != deltas.len()
            || *run_ptr.last().unwrap() != run_base.len()
            || run_base.len() != run_end.len()
        {
            return malformed("pointer arrays do not cover the payload".into());
        }
        if deltas.len() > u32::MAX as usize {
            return malformed("too many entries for u32 run offsets".into());
        }
        for r in 0..nrows {
            if row_ptr[r] > row_ptr[r + 1] || run_ptr[r] > run_ptr[r + 1] {
                return malformed(format!("row {r}: decreasing pointer"));
            }
            let (has_nnz, has_runs) =
                (row_ptr[r] < row_ptr[r + 1], run_ptr[r] < run_ptr[r + 1]);
            if has_nnz != has_runs {
                return malformed(format!("row {r}: runs and nonzeros disagree"));
            }
            let mut start = row_ptr[r];
            let mut prev_col: Option<u32> = None;
            for k in run_ptr[r]..run_ptr[r + 1] {
                let base = run_base[k];
                let end = run_end[k] as usize;
                if base % BLOCK_COLS != 0 {
                    return malformed(format!("row {r}: unaligned run anchor {base}"));
                }
                if end <= start || end > row_ptr[r + 1] {
                    return malformed(format!("row {r}: run end {end} outside row"));
                }
                for i in start..end {
                    let c = base + deltas[i] as u32;
                    if c as usize >= ncols {
                        return malformed(format!("row {r}: column {c} out of bounds"));
                    }
                    if prev_col.is_some_and(|p| p >= c) {
                        return malformed(format!("row {r}: columns not ascending at {c}"));
                    }
                    prev_col = Some(c);
                }
                start = end;
            }
            if start != row_ptr[r + 1] {
                return malformed(format!("row {r}: runs do not cover the row"));
            }
        }
        for v in &values {
            if !v.is_finite() {
                return malformed("non-finite value".into());
            }
        }
        Ok(BlockedCsr { nrows, ncols, row_ptr, run_ptr, run_base, run_end, deltas, values })
    }

    /// Raw arrays, for persistence.
    #[allow(clippy::type_complexity)]
    pub fn raw(&self) -> (&[usize], &[usize], &[u32], &[u32], &[u16], &[f64]) {
        (&self.row_ptr, &self.run_ptr, &self.run_base, &self.run_end, &self.deltas, &self.values)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.deltas.len()
    }

    /// Total number of runs across all rows.
    #[inline]
    pub fn num_runs(&self) -> usize {
        self.run_base.len()
    }

    /// Stored entries of row `r`.
    #[inline]
    pub fn row_nnz(&self, r: Index) -> usize {
        let r = r as usize;
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Runs of row `r`.
    #[inline]
    pub fn row_runs(&self, r: Index) -> usize {
        let r = r as usize;
        self.run_ptr[r + 1] - self.run_ptr[r]
    }

    /// Values of row `r` (flat-layout order).
    #[inline]
    pub fn row_values(&self, r: Index) -> &[f64] {
        let r = r as usize;
        &self.values[self.row_ptr[r]..self.row_ptr[r + 1]]
    }

    /// First (smallest) column of row `r`, if any.
    #[inline]
    pub fn row_first_col(&self, r: Index) -> Option<u32> {
        let r = r as usize;
        (self.row_ptr[r] < self.row_ptr[r + 1]).then(|| {
            self.run_base[self.run_ptr[r]] + self.deltas[self.row_ptr[r]] as u32
        })
    }

    /// Last (largest) column of row `r`, if any.
    #[inline]
    pub fn row_last_col(&self, r: Index) -> Option<u32> {
        let r = r as usize;
        (self.row_ptr[r] < self.row_ptr[r + 1]).then(|| {
            self.run_base[self.run_ptr[r + 1] - 1] + self.deltas[self.row_ptr[r + 1] - 1] as u32
        })
    }

    /// Index bytes a gather streams for row `r`: 2 per delta + 8 per run
    /// header. (The flat layout pays 4 per nonzero.)
    #[inline]
    pub fn row_index_bytes(&self, r: Index) -> usize {
        2 * self.row_nnz(r) + 8 * self.row_runs(r)
    }

    /// Index bytes of the whole matrix (delta + run-header arrays).
    pub fn index_bytes(&self) -> usize {
        2 * self.deltas.len() + 8 * self.run_base.len()
    }

    /// Heap footprint of all arrays in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.run_ptr.len() * std::mem::size_of::<usize>()
            + self.run_base.len() * 4
            + self.run_end.len() * 4
            + self.deltas.len() * 2
            + self.values.len() * 8
    }

    /// Decodes row `r`'s columns in ascending order into `f`.
    #[inline]
    fn for_each_col(&self, r: Index, mut f: impl FnMut(u32)) {
        let r = r as usize;
        let mut start = self.row_ptr[r];
        for k in self.run_ptr[r]..self.run_ptr[r + 1] {
            let base = self.run_base[k];
            let end = self.run_end[k] as usize;
            for &d in &self.deltas[start..end] {
                f(base + d as u32);
            }
            start = end;
        }
    }

    /// Decodes row `r`'s column indices into `out` (cleared first). With
    /// `out` at capacity ≥ the largest row, this allocates nothing — the
    /// wide gather kernels decode into a reused scratch and then run the
    /// same slice kernels as the flat layout. Decoding is a widening copy
    /// per run (`extend` over an exact-size map, which vectorises),
    /// L1-resident for the scratch — the DRAM side still streams only the
    /// 2-byte deltas.
    #[inline]
    pub fn decode_row_into(&self, r: Index, out: &mut Vec<u32>) {
        out.clear();
        let r = r as usize;
        let mut start = self.row_ptr[r];
        for k in self.run_ptr[r]..self.run_ptr[r + 1] {
            let base = self.run_base[k];
            let end = self.run_end[k] as usize;
            out.extend(self.deltas[start..end].iter().map(|&d| base + d as u32));
            start = end;
        }
    }

    /// The one-accumulator scalar gather over the blocked row — identical
    /// pairs in identical order to the flat
    /// [`CsrMatrix::row_dot_scattered`], hence bit-identical. Also counts
    /// the stamp hits (value loads actually executed), which the
    /// byte-traffic accounting needs.
    #[inline]
    pub fn row_dot_scattered_counting(&self, r: Index, buf: &ScatteredColumn) -> (f64, usize) {
        debug_assert_eq!(buf.dim(), self.ncols);
        let (stamps, generation, colvals) = buf.raw_parts();
        let r = r as usize;
        let mut acc = 0.0;
        let mut hits = 0usize;
        let mut start = self.row_ptr[r];
        for k in self.run_ptr[r]..self.run_ptr[r + 1] {
            let base = self.run_base[k];
            let end = self.run_end[k] as usize;
            // Per-run slices + zip: one bounds check per run, none per
            // element — the decode adds a single u16→u32 widen and add to
            // the flat kernel's loop body.
            for (&d, &v) in self.deltas[start..end].iter().zip(&self.values[start..end]) {
                let c = (base + d as u32) as usize;
                if stamps[c] == generation {
                    acc += v * colvals[c];
                    hits += 1;
                }
            }
            start = end;
        }
        (acc, hits)
    }

    /// [`row_dot_scattered_counting`](Self::row_dot_scattered_counting)
    /// without the hit count.
    #[inline]
    pub fn row_dot_scattered(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        self.row_dot_scattered_counting(r, buf).0
    }

    /// Two-pointer merge join against a sorted sparse vector, decoding
    /// columns on the fly — same matching pairs in the same order as
    /// [`CsrMatrix::row_dot_sparse`], hence bit-identical.
    pub fn row_dot_sparse(&self, r: Index, idx: &[Index], val: &[f64]) -> f64 {
        debug_assert_eq!(idx.len(), val.len());
        let r = r as usize;
        let mut acc = 0.0;
        let mut b = 0usize;
        let mut start = self.row_ptr[r];
        'outer: for k in self.run_ptr[r]..self.run_ptr[r + 1] {
            let base = self.run_base[k];
            let end = self.run_end[k] as usize;
            for (&d, &v) in self.deltas[start..end].iter().zip(&self.values[start..end]) {
                let c = base + d as u32;
                while b < idx.len() && idx[b] < c {
                    b += 1;
                }
                if b >= idx.len() {
                    break 'outer;
                }
                if idx[b] == c {
                    acc += v * val[b];
                    b += 1;
                }
            }
            start = end;
        }
        acc
    }

    /// Dot product of row `r` with a dense vector (bit-identical to the
    /// flat [`CsrMatrix::row_dot_dense`]).
    #[inline]
    pub fn row_dot_dense(&self, r: Index, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.ncols);
        let r_us = r as usize;
        let mut acc = 0.0;
        let mut start = self.row_ptr[r_us];
        for k in self.run_ptr[r_us]..self.run_ptr[r_us + 1] {
            let base = self.run_base[k];
            let end = self.run_end[k] as usize;
            for (&d, &v) in self.deltas[start..end].iter().zip(&self.values[start..end]) {
                acc += v * x[(base + d as u32) as usize];
            }
            start = end;
        }
        acc
    }

    /// Dense `y = A · x` (row-major traversal).
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        (0..self.nrows as Index).map(|r| self.row_dot_dense(r, x)).collect()
    }

    /// Issues software prefetches for the front of row `r`'s delta and
    /// value spans (a few cache lines each — enough to hide the initial
    /// DRAM latency; the hardware prefetcher streams the rest). A no-op on
    /// architectures without a prefetch hint.
    #[inline]
    pub fn prefetch_row(&self, r: Index) {
        let r = r as usize;
        let (start, end) = (self.row_ptr[r], self.row_ptr[r + 1]);
        if start >= end {
            return;
        }
        prefetch_span(&self.deltas[start..end], 2);
        prefetch_span(&self.values[start..end], 2);
        prefetch_span(&self.run_base[self.run_ptr[r]..self.run_ptr[r + 1]], 1);
    }
}

/// Encodes one row's sorted columns into run headers + deltas, with the
/// row's payload starting at global offset `start`. This is **the** row
/// encoder: `from_csr` runs it for every row and `splice_rows` for the
/// dirty rows only, which is why a spliced matrix is array-for-array
/// identical to a from-scratch re-encode.
#[inline]
fn encode_row(
    cols: &[Index],
    start: usize,
    run_base: &mut Vec<u32>,
    run_end: &mut Vec<u32>,
    deltas: &mut Vec<u16>,
) {
    let mut current_base = u32::MAX; // sentinel: no open run
    for (off, &c) in cols.iter().enumerate() {
        let base = c & !(BLOCK_COLS - 1);
        if base != current_base {
            run_base.push(base);
            run_end.push((start + off) as u32); // provisional; fixed below
            current_base = base;
        }
        *run_end.last_mut().expect("run open") = (start + off + 1) as u32;
        deltas.push((c - base) as u16);
    }
}

/// Prefetches up to `lines` 64-byte cache lines from the start of `span`.
#[inline]
pub(crate) fn prefetch_span<T>(span: &[T], lines: usize) {
    let bytes = std::mem::size_of_val(span);
    let base = span.as_ptr() as *const u8;
    let mut offset = 0usize;
    for _ in 0..lines {
        if offset >= bytes {
            break;
        }
        prefetch_read(unsafe { base.add(offset) });
        offset += 64;
    }
}

/// One read-prefetch hint. Safe to call with any address on x86-64
/// (prefetch never faults); a no-op elsewhere.
#[inline]
fn prefetch_read(ptr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch is a hint, does not fault, and SSE is baseline
    // on x86-64.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CscMatrix;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trips = Vec::new();
        for r in 0..nrows as Index {
            for c in 0..ncols as Index {
                if rng.gen_bool(density) {
                    trips.push((r, c, rng.gen_range(-2.0..2.0)));
                }
            }
        }
        CsrMatrix::from_csc(&CscMatrix::from_triplets(nrows, ncols, &trips).unwrap())
    }

    fn random_sparse_vec(n: usize, density: f64, seed: u64) -> (Vec<Index>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        for i in 0..n as Index {
            if rng.gen_bool(density) {
                idx.push(i);
                val.push(rng.gen_range(-1.0..1.0));
            }
        }
        (idx, val)
    }

    #[test]
    fn roundtrip_is_lossless() {
        for seed in 0..8u64 {
            let csr = random_csr(20, 35, 0.3, seed);
            let blocked = BlockedCsr::from_csr(csr.clone()).unwrap();
            assert_eq!(blocked.nnz(), csr.nnz());
            let back = blocked.to_csr();
            assert_eq!(back, csr, "seed {seed}");
        }
    }

    #[test]
    fn runs_split_on_block_boundaries() {
        // Columns straddling the 65536 boundary must land in two runs.
        let trips = vec![
            (0, 10, 1.0),
            (0, 65535, 2.0),
            (0, 65536, 3.0),
            (0, 200_000, 4.0),
        ];
        let csr =
            CsrMatrix::from_csc(&CscMatrix::from_triplets(1, 300_000, &trips).unwrap());
        let blocked = BlockedCsr::from_csr(csr.clone()).unwrap();
        assert_eq!(blocked.row_runs(0), 3, "blocks 0, 1 and 3");
        assert_eq!(blocked.row_first_col(0), Some(10));
        assert_eq!(blocked.row_last_col(0), Some(200_000));
        assert_eq!(blocked.to_csr(), csr);
    }

    #[test]
    fn scalar_gather_bit_identical_to_flat() {
        for seed in 0..10u64 {
            let csr = random_csr(25, 40, 0.25, seed);
            let blocked = BlockedCsr::from_csr(csr.clone()).unwrap();
            let (idx, val) = random_sparse_vec(40, 0.4, seed + 50);
            let mut buf = ScatteredColumn::new(40);
            buf.load(&idx, &val);
            for r in 0..25 as Index {
                let flat = csr.row_dot_scattered(r, &buf);
                let (got, hits) = blocked.row_dot_scattered_counting(r, &buf);
                assert_eq!(flat.to_bits(), got.to_bits(), "seed {seed} row {r}");
                let (cols, _) = csr.row(r);
                let expect_hits =
                    cols.iter().filter(|&&c| buf.get(c).is_some()).count();
                assert_eq!(hits, expect_hits, "seed {seed} row {r}");
            }
        }
    }

    #[test]
    fn merge_join_and_dense_bit_identical_to_flat() {
        for seed in 0..6u64 {
            let csr = random_csr(18, 30, 0.3, seed);
            let blocked = BlockedCsr::from_csr(csr.clone()).unwrap();
            let (idx, val) = random_sparse_vec(30, 0.35, seed + 7);
            let dense: Vec<f64> = (0..30).map(|i| (i as f64) * 0.5 - 7.0).collect();
            for r in 0..18 as Index {
                assert_eq!(
                    csr.row_dot_sparse(r, &idx, &val).to_bits(),
                    blocked.row_dot_sparse(r, &idx, &val).to_bits()
                );
                assert_eq!(
                    csr.row_dot_dense(r, &dense).to_bits(),
                    blocked.row_dot_dense(r, &dense).to_bits()
                );
            }
            assert_eq!(csr.matvec(&dense), blocked.matvec(&dense));
        }
    }

    #[test]
    fn decode_row_matches_flat_columns() {
        let csr = random_csr(12, 50, 0.4, 3);
        let blocked = BlockedCsr::from_csr(csr.clone()).unwrap();
        let mut scratch = Vec::new();
        for r in 0..12 as Index {
            blocked.decode_row_into(r, &mut scratch);
            let (cols, _) = csr.row(r);
            assert_eq!(scratch.as_slice(), cols, "row {r}");
            assert_eq!(blocked.row_values(r), csr.row(r).1);
        }
    }

    #[test]
    fn index_bytes_shrink_for_single_block_matrices() {
        // Any matrix under 65 536 columns has one run per non-empty row:
        // 2·nnz + 8·rows vs the flat 4·nnz.
        let csr = random_csr(30, 60, 0.5, 9);
        let nnz = csr.nnz();
        let blocked = BlockedCsr::from_csr(csr).unwrap();
        assert!(blocked.num_runs() <= 30);
        assert_eq!(blocked.index_bytes(), 2 * nnz + 8 * blocked.num_runs());
        assert!(blocked.index_bytes() < 4 * nnz, "blocked must beat flat here");
    }

    #[test]
    fn from_raw_parts_validates() {
        let csr = random_csr(6, 12, 0.5, 4);
        let blocked = BlockedCsr::from_csr(csr).unwrap();
        let (row_ptr, run_ptr, run_base, run_end, deltas, values) = {
            let (a, b, c, d, e, f) = blocked.raw();
            (a.to_vec(), b.to_vec(), c.to_vec(), d.to_vec(), e.to_vec(), f.to_vec())
        };
        // The pristine arrays reconstruct.
        assert!(BlockedCsr::from_raw_parts(
            6,
            12,
            row_ptr.clone(),
            run_ptr.clone(),
            run_base.clone(),
            run_end.clone(),
            deltas.clone(),
            values.clone()
        )
        .is_ok());
        // An unaligned anchor is rejected.
        let mut bad_base = run_base.clone();
        bad_base[0] = 3;
        assert!(BlockedCsr::from_raw_parts(
            6,
            12,
            row_ptr.clone(),
            run_ptr.clone(),
            bad_base,
            run_end.clone(),
            deltas.clone(),
            values.clone()
        )
        .is_err());
        // A delta pushing a column out of bounds is rejected.
        let mut bad_delta = deltas.clone();
        *bad_delta.last_mut().unwrap() = 50; // ncols is 12
        assert!(BlockedCsr::from_raw_parts(
            6,
            12,
            row_ptr.clone(),
            run_ptr.clone(),
            run_base.clone(),
            run_end.clone(),
            bad_delta,
            values.clone()
        )
        .is_err());
        // Non-ascending columns are rejected.
        if deltas.len() >= 2 {
            let mut swapped = deltas.clone();
            swapped.swap(0, 1);
            assert!(BlockedCsr::from_raw_parts(
                6, 12, row_ptr, run_ptr, run_base, run_end, swapped, values
            )
            .is_err());
        }
    }

    /// The splice contract: re-encoding only the dirty rows produces a
    /// matrix array-for-array equal to re-encoding the fully spliced flat
    /// matrix — run headers, global offsets, deltas and values.
    #[test]
    fn splice_rows_is_identical_to_full_reencode() {
        use crate::csr::RowUpdate;
        for seed in 0..8u64 {
            let csr = random_csr(20, 200_000, 0.0008, seed);
            let blocked = BlockedCsr::from_csr(csr.clone()).unwrap();
            // Replace a third of the rows with fresh content spanning
            // several 2^16 blocks (forces multi-run re-encoding).
            let mut rng = StdRng::seed_from_u64(seed + 999);
            let mut updates: Vec<RowUpdate> = Vec::new();
            for r in (0..20u32).step_by(3) {
                let mut cols: Vec<Index> = (0..rng.gen_range(0..40u32))
                    .map(|_| rng.gen_range(0..200_000u32))
                    .collect();
                cols.sort_unstable();
                cols.dedup();
                let vals: Vec<f64> = cols.iter().map(|&c| c as f64 * 0.5 + 1.0).collect();
                updates.push(RowUpdate { row: r, cols, vals });
            }
            let spliced = blocked.splice_rows(&updates).unwrap();
            let reencoded = BlockedCsr::from_csr(csr.splice_rows(&updates).unwrap()).unwrap();
            assert_eq!(spliced, reencoded, "seed {seed}");
            assert_eq!(blocked.splice_rows(&[]).unwrap(), blocked, "seed {seed}: identity");
        }
    }

    #[test]
    fn empty_rows_and_empty_matrix() {
        let csr = CsrMatrix::from_raw_parts(3, 5, vec![0, 0, 2, 2], vec![1, 4], vec![1.0, 2.0])
            .unwrap();
        let blocked = BlockedCsr::from_csr(csr.clone()).unwrap();
        assert_eq!(blocked.row_nnz(0), 0);
        assert_eq!(blocked.row_first_col(0), None);
        assert_eq!(blocked.row_last_col(2), None);
        assert_eq!(blocked.row_nnz(1), 2);
        assert_eq!(blocked.to_csr(), csr);
        blocked.prefetch_row(0); // must not fault on empty rows
        blocked.prefetch_row(1);
    }
}
