//! The scatter/gather proximity kernel.
//!
//! K-dash's query hot loop evaluates `p_u = c · (U⁻¹)ᵤ,⋆ · (L⁻¹ e_q)` for
//! every candidate `u`. The right-hand vector `L⁻¹ e_q` is *fixed for the
//! whole query*, so paying a two-pointer merge join
//! (`O(nnz(row) + nnz(col))`, [`CsrMatrix::row_dot_sparse`]) per candidate
//! wastes a full scan of the query column every time. Instead:
//!
//! 1. **scatter** the query column once into a dense, epoch-stamped
//!    accumulator ([`ScatteredColumn::load`], `O(nnz(col))`),
//! 2. **gather** each candidate's proximity over only the candidate row's
//!    nonzeros ([`CsrMatrix::row_dot_scattered`], `O(nnz(row))`).
//!
//! Epoch stamps ([`kdash_graph::EpochStamps`]) make `load` `O(nnz)`
//! instead of `O(n)`: positions written by an earlier query are
//! invalidated wholesale by bumping the generation, the same idiom
//! [`crate::SolveWorkspace`] uses for its visit marks.
//!
//! The gather visits exactly the merge join's matching pairs in exactly the
//! same (ascending-column) order, so the floating-point sum — and therefore
//! every proximity the query engine reports — is **bit-identical** to the
//! merge-join kernel. `row_dot_sparse` stays around as the independent
//! reference implementation; the equivalence suite cross-checks the two.
//!
//! [`row_dot_scattered`](CsrMatrix::row_dot_scattered) below is the
//! *one-accumulator reference* gather. The production hot path dispatches
//! through [`crate::kernel`] instead: a four-accumulator unrolled kernel
//! and its bit-identical AVX2 twin, selected at runtime via
//! [`crate::GatherKernel`] — this reference is what both are validated
//! against (`≤ 1e-12`, exactness preserved).

use crate::{CsrMatrix, Index};
use kdash_graph::EpochStamps;

/// A sparse column scattered into dense, epoch-stamped storage.
///
/// Reusable across queries: allocate once per worker (it is the largest
/// piece of per-query state at `12 bytes × n`), then [`load`] a new column
/// per query without clearing.
///
/// The stamps and values are deliberately *split* into parallel arrays
/// rather than interleaved: most gather probes fail the stamp check, so
/// the hot data structure is the stamp array alone — 4 bytes per node, 16
/// stamps per cache line — and the value array is only touched on a match.
/// (An interleaved 16-byte slot layout measured ~40 % slower on the
/// `proximity_kernel` benchmark.)
///
/// [`load`]: ScatteredColumn::load
#[derive(Debug, Clone)]
pub struct ScatteredColumn {
    /// Position `i` holds a value of the current column iff marked.
    stamps: EpochStamps,
    /// Dense values, valid only where stamped.
    values: Vec<f64>,
    /// Loaded entries of the current column.
    col_nnz: u32,
    /// Smallest loaded position (undefined while `col_nnz == 0`).
    col_first: u32,
    /// Largest loaded position (undefined while `col_nnz == 0`).
    col_last: u32,
    /// Exclusive prefix sums of the loaded entries over
    /// [`DENSITY_BUCKET_COLS`]-wide position buckets: `bucket_cum[b]` is
    /// the number of entries at positions `< b · DENSITY_BUCKET_COLS`.
    /// Rebuilt on every [`load`](Self::load) (`O(nnz + n/bucket)`), it is
    /// what makes [`expected_hit_rate`](Self::expected_hit_rate) `O(1)`
    /// per row — the adaptive kernel policy's query-side input.
    bucket_cum: Vec<u32>,
}

/// Width of one density bucket (columns). A fixed, machine-independent
/// constant: the adaptive policy's decisions depend on it, and they must
/// be identical on every host.
pub const DENSITY_BUCKET_COLS: u32 = 1024;

impl ScatteredColumn {
    /// An empty buffer for vectors of dimension `n` (nothing loaded).
    pub fn new(n: usize) -> Self {
        let buckets = n / DENSITY_BUCKET_COLS as usize + 2;
        ScatteredColumn {
            stamps: EpochStamps::new(n),
            values: vec![0.0; n],
            col_nnz: 0,
            col_first: 0,
            col_last: 0,
            bucket_cum: vec![0; buckets],
        }
    }

    /// Dimension this buffer serves.
    #[inline]
    pub fn dim(&self) -> usize {
        self.stamps.dim()
    }

    /// Scatters the sparse vector `(idx, val)` as the new contents,
    /// dropping whatever was loaded before. `O(nnz + n/bucket)` — the
    /// bucket histogram behind the adaptive policy is rebuilt in the same
    /// pass. Allocation-free.
    pub fn load(&mut self, idx: &[Index], val: &[f64]) {
        debug_assert_eq!(idx.len(), val.len());
        self.stamps.advance();
        self.bucket_cum.fill(0);
        let (mut first, mut last) = (u32::MAX, 0u32);
        for (&i, &v) in idx.iter().zip(val) {
            self.stamps.mark(i as usize);
            self.values[i as usize] = v;
            first = first.min(i);
            last = last.max(i);
            // Count into the bucket *after* the entry's own, so one prefix
            // pass turns counts into exclusive cumulative sums in place.
            self.bucket_cum[(i / DENSITY_BUCKET_COLS) as usize + 1] += 1;
        }
        self.col_nnz = idx.len() as u32;
        (self.col_first, self.col_last) = if idx.is_empty() { (0, 0) } else { (first, last) };
        for b in 1..self.bucket_cum.len() {
            self.bucket_cum[b] += self.bucket_cum[b - 1];
        }
    }

    /// Loaded entries of the current column.
    #[inline]
    pub fn loaded_nnz(&self) -> u32 {
        self.col_nnz
    }

    /// Loaded span `(first, last)` of the current column, `None` when the
    /// column is empty.
    #[inline]
    pub fn loaded_span(&self) -> Option<(u32, u32)> {
        (self.col_nnz > 0).then_some((self.col_first, self.col_last))
    }

    /// Loaded entries inside the window `[first, last]` (bucket
    /// resolution) and the bucket-covered window width, the integer form
    /// behind [`expected_hit_rate`](Self::expected_hit_rate). The hot
    /// policy predicate compares these directly — no division on the
    /// per-row path. Returns `(0, 0)` for empty/disjoint windows.
    #[inline]
    pub fn window_density(&self, first: u32, last: u32) -> (u64, u64) {
        if self.col_nnz == 0 || last < first {
            return (0, 0);
        }
        let lo = first.max(self.col_first);
        let hi = last.min(self.col_last);
        if hi < lo {
            return (0, 0);
        }
        let b_lo = (lo / DENSITY_BUCKET_COLS) as usize;
        let b_hi = (hi / DENSITY_BUCKET_COLS) as usize;
        let in_window = (self.bucket_cum[b_hi + 1] - self.bucket_cum[b_lo]) as u64;
        let covered = (b_hi - b_lo + 1) as u64 * DENSITY_BUCKET_COLS as u64;
        (in_window, covered)
    }

    /// Expected stamp-hit rate for a probe uniformly drawn from the column
    /// window `[first, last]`: the loaded entries inside the window
    /// (bucket resolution) over the bucket-covered window width. A pure
    /// function of the loaded column and the arguments — never the host —
    /// so the adaptive kernel policy built on it is machine-independent.
    /// `O(1)`.
    pub fn expected_hit_rate(&self, first: u32, last: u32) -> f64 {
        let (in_window, covered) = self.window_density(first, last);
        if covered == 0 {
            return 0.0;
        }
        (in_window as f64 / covered as f64).min(1.0)
    }

    /// The loaded value at position `i`, if `i` is part of the current
    /// column. `None` for every position before the first
    /// [`load`](ScatteredColumn::load).
    #[inline]
    pub fn get(&self, i: Index) -> Option<f64> {
        self.stamps.is_marked(i as usize).then(|| self.values[i as usize])
    }

    /// Test hook: forces the internal epoch counter, to exercise the
    /// rollover path without four billion loads.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.stamps.force_epoch(epoch);
    }

    /// Raw view for the gather kernels ([`crate::kernel`]): the stamp
    /// array, the current generation, and the dense values. Position `i`
    /// holds a current value iff `stamps[i] == generation` — the bulk form
    /// of [`get`](Self::get).
    #[inline]
    pub(crate) fn raw_parts(&self) -> (&[u32], u32, &[f64]) {
        let (stamps, generation) = self.stamps.raw();
        (stamps, generation, &self.values)
    }
}

impl CsrMatrix {
    /// Dot product of row `r` with the column held in `buf`: a gather over
    /// only this row's nonzeros, `O(nnz(row))`.
    ///
    /// Matching pairs are accumulated in ascending column order — the same
    /// pairs in the same order as [`row_dot_sparse`](Self::row_dot_sparse)
    /// against the loaded vector, so the result is bit-identical.
    #[inline]
    pub fn row_dot_scattered(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        debug_assert_eq!(buf.dim(), self.ncols());
        let (cols, vals) = self.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if buf.stamps.is_marked(c as usize) {
                acc += v * buf.values[c as usize];
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CscMatrix;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trips = Vec::new();
        for r in 0..nrows as Index {
            for c in 0..ncols as Index {
                if rng.gen_bool(density) {
                    trips.push((r, c, rng.gen_range(-2.0..2.0)));
                }
            }
        }
        CsrMatrix::from_csc(&CscMatrix::from_triplets(nrows, ncols, &trips).unwrap())
    }

    fn random_sparse_vec(n: usize, density: f64, seed: u64) -> (Vec<Index>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for i in 0..n as Index {
            if rng.gen_bool(density) {
                idx.push(i);
                val.push(rng.gen_range(-1.0..1.0));
            }
        }
        (idx, val)
    }

    #[test]
    fn gather_is_bit_identical_to_merge_join() {
        for seed in 0..20u64 {
            let m = random_csr(30, 40, 0.2, seed);
            let (idx, val) = random_sparse_vec(40, 0.3, seed + 100);
            let mut buf = ScatteredColumn::new(40);
            buf.load(&idx, &val);
            for r in 0..30 as Index {
                let a = m.row_dot_sparse(r, &idx, &val);
                let b = m.row_dot_scattered(r, &buf);
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn reload_drops_previous_column() {
        let m = random_csr(10, 10, 0.5, 3);
        let mut buf = ScatteredColumn::new(10);
        let (i1, v1) = random_sparse_vec(10, 0.8, 4);
        buf.load(&i1, &v1);
        let (i2, v2) = random_sparse_vec(10, 0.2, 5);
        buf.load(&i2, &v2);
        for r in 0..10 as Index {
            assert_eq!(
                m.row_dot_scattered(r, &buf).to_bits(),
                m.row_dot_sparse(r, &i2, &v2).to_bits(),
                "stale entries leaked into row {r}"
            );
        }
    }

    #[test]
    fn fresh_buffer_has_nothing_loaded() {
        let m = random_csr(5, 5, 0.6, 11);
        let buf = ScatteredColumn::new(5);
        for i in 0..5 as Index {
            assert_eq!(buf.get(i), None, "position {i} loaded before any load()");
        }
        for r in 0..5 as Index {
            assert_eq!(m.row_dot_scattered(r, &buf), 0.0, "never-loaded buffer must act empty");
        }
    }

    #[test]
    fn get_reports_only_current_entries() {
        let mut buf = ScatteredColumn::new(5);
        buf.load(&[1, 3], &[0.5, -0.25]);
        assert_eq!(buf.get(0), None);
        assert_eq!(buf.get(1), Some(0.5));
        assert_eq!(buf.get(3), Some(-0.25));
        buf.load(&[0], &[2.0]);
        assert_eq!(buf.get(1), None, "previous load must be invalidated");
        assert_eq!(buf.get(0), Some(2.0));
    }

    #[test]
    fn empty_column_gathers_zero() {
        let m = random_csr(6, 6, 0.5, 7);
        let mut buf = ScatteredColumn::new(6);
        buf.load(&[], &[]);
        for r in 0..6 as Index {
            assert_eq!(m.row_dot_scattered(r, &buf), 0.0);
        }
    }

    #[test]
    fn profile_tracks_span_and_density() {
        let mut buf = ScatteredColumn::new(5000);
        assert_eq!(buf.loaded_nnz(), 0);
        assert_eq!(buf.loaded_span(), None);
        assert_eq!(buf.expected_hit_rate(0, 4999), 0.0, "empty column never hits");

        // A dense clump in bucket 2 (positions 2048..2148).
        let idx: Vec<Index> = (2048..2148).collect();
        let val = vec![1.0; idx.len()];
        buf.load(&idx, &val);
        assert_eq!(buf.loaded_nnz(), 100);
        assert_eq!(buf.loaded_span(), Some((2048, 2147)));
        // Inside the clump's bucket: 100 of 1024 positions loaded.
        let inside = buf.expected_hit_rate(2048, 2500);
        assert!((inside - 100.0 / 1024.0).abs() < 1e-12, "{inside}");
        // A window that misses the loaded span entirely predicts zero.
        assert_eq!(buf.expected_hit_rate(0, 1000), 0.0);
        assert_eq!(buf.expected_hit_rate(3000, 4999), 0.0);
        // Degenerate window.
        assert_eq!(buf.expected_hit_rate(10, 5), 0.0);

        // Reload resets the profile.
        buf.load(&[1], &[2.0]);
        assert_eq!(buf.loaded_nnz(), 1);
        assert_eq!(buf.loaded_span(), Some((1, 1)));
        assert_eq!(buf.expected_hit_rate(2048, 2500), 0.0, "stale buckets must clear");
        assert!(buf.expected_hit_rate(0, 100) > 0.0);
    }

    #[test]
    fn hit_rate_is_capped_at_one() {
        // More entries than the covered width can happen only through the
        // min-cap (every position of one bucket loaded).
        let mut buf = ScatteredColumn::new(1024);
        let idx: Vec<Index> = (0..1024).collect();
        buf.load(&idx, &vec![1.0; 1024]);
        assert_eq!(buf.expected_hit_rate(0, 1023), 1.0);
    }

    #[test]
    fn epoch_rollover_keeps_correctness() {
        let m = random_csr(12, 12, 0.4, 9);
        let mut buf = ScatteredColumn::new(12);
        // A stale full column right before the wrap: after rollover its
        // stamps (== u32::MAX) must not read as current.
        let all: Vec<Index> = (0..12).collect();
        let ones = vec![1.0; 12];
        buf.force_epoch(u32::MAX - 1);
        buf.load(&all, &ones); // epoch becomes u32::MAX
        let (idx, val) = random_sparse_vec(12, 0.3, 10);
        buf.load(&idx, &val); // wraps: stamps cleared, epoch restarts at 1
        for r in 0..12 as Index {
            assert_eq!(
                m.row_dot_scattered(r, &buf).to_bits(),
                m.row_dot_sparse(r, &idx, &val).to_bits(),
                "rollover leaked stale entries into row {r}"
            );
        }
    }
}
