//! The scatter/gather proximity kernel.
//!
//! K-dash's query hot loop evaluates `p_u = c · (U⁻¹)ᵤ,⋆ · (L⁻¹ e_q)` for
//! every candidate `u`. The right-hand vector `L⁻¹ e_q` is *fixed for the
//! whole query*, so paying a two-pointer merge join
//! (`O(nnz(row) + nnz(col))`, [`CsrMatrix::row_dot_sparse`]) per candidate
//! wastes a full scan of the query column every time. Instead:
//!
//! 1. **scatter** the query column once into a dense, epoch-stamped
//!    accumulator ([`ScatteredColumn::load`], `O(nnz(col))`),
//! 2. **gather** each candidate's proximity over only the candidate row's
//!    nonzeros ([`CsrMatrix::row_dot_scattered`], `O(nnz(row))`).
//!
//! Epoch stamps ([`kdash_graph::EpochStamps`]) make `load` `O(nnz)`
//! instead of `O(n)`: positions written by an earlier query are
//! invalidated wholesale by bumping the generation, the same idiom
//! [`crate::SolveWorkspace`] uses for its visit marks.
//!
//! The gather visits exactly the merge join's matching pairs in exactly the
//! same (ascending-column) order, so the floating-point sum — and therefore
//! every proximity the query engine reports — is **bit-identical** to the
//! merge-join kernel. `row_dot_sparse` stays around as the independent
//! reference implementation; the equivalence suite cross-checks the two.
//!
//! [`row_dot_scattered`](CsrMatrix::row_dot_scattered) below is the
//! *one-accumulator reference* gather. The production hot path dispatches
//! through [`crate::kernel`] instead: a four-accumulator unrolled kernel
//! and its bit-identical AVX2 twin, selected at runtime via
//! [`crate::GatherKernel`] — this reference is what both are validated
//! against (`≤ 1e-12`, exactness preserved).

use crate::{CsrMatrix, Index};
use kdash_graph::EpochStamps;

/// A sparse column scattered into dense, epoch-stamped storage.
///
/// Reusable across queries: allocate once per worker (it is the largest
/// piece of per-query state at `12 bytes × n`), then [`load`] a new column
/// per query without clearing.
///
/// The stamps and values are deliberately *split* into parallel arrays
/// rather than interleaved: most gather probes fail the stamp check, so
/// the hot data structure is the stamp array alone — 4 bytes per node, 16
/// stamps per cache line — and the value array is only touched on a match.
/// (An interleaved 16-byte slot layout measured ~40 % slower on the
/// `proximity_kernel` benchmark.)
///
/// [`load`]: ScatteredColumn::load
#[derive(Debug, Clone)]
pub struct ScatteredColumn {
    /// Position `i` holds a value of the current column iff marked.
    stamps: EpochStamps,
    /// Dense values, valid only where stamped.
    values: Vec<f64>,
}

impl ScatteredColumn {
    /// An empty buffer for vectors of dimension `n` (nothing loaded).
    pub fn new(n: usize) -> Self {
        ScatteredColumn { stamps: EpochStamps::new(n), values: vec![0.0; n] }
    }

    /// Dimension this buffer serves.
    #[inline]
    pub fn dim(&self) -> usize {
        self.stamps.dim()
    }

    /// Scatters the sparse vector `(idx, val)` as the new contents,
    /// dropping whatever was loaded before. `O(nnz)`.
    pub fn load(&mut self, idx: &[Index], val: &[f64]) {
        debug_assert_eq!(idx.len(), val.len());
        self.stamps.advance();
        for (&i, &v) in idx.iter().zip(val) {
            self.stamps.mark(i as usize);
            self.values[i as usize] = v;
        }
    }

    /// The loaded value at position `i`, if `i` is part of the current
    /// column. `None` for every position before the first
    /// [`load`](ScatteredColumn::load).
    #[inline]
    pub fn get(&self, i: Index) -> Option<f64> {
        self.stamps.is_marked(i as usize).then(|| self.values[i as usize])
    }

    /// Test hook: forces the internal epoch counter, to exercise the
    /// rollover path without four billion loads.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.stamps.force_epoch(epoch);
    }

    /// Raw view for the gather kernels ([`crate::kernel`]): the stamp
    /// array, the current generation, and the dense values. Position `i`
    /// holds a current value iff `stamps[i] == generation` — the bulk form
    /// of [`get`](Self::get).
    #[inline]
    pub(crate) fn raw_parts(&self) -> (&[u32], u32, &[f64]) {
        let (stamps, generation) = self.stamps.raw();
        (stamps, generation, &self.values)
    }
}

impl CsrMatrix {
    /// Dot product of row `r` with the column held in `buf`: a gather over
    /// only this row's nonzeros, `O(nnz(row))`.
    ///
    /// Matching pairs are accumulated in ascending column order — the same
    /// pairs in the same order as [`row_dot_sparse`](Self::row_dot_sparse)
    /// against the loaded vector, so the result is bit-identical.
    #[inline]
    pub fn row_dot_scattered(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        debug_assert_eq!(buf.dim(), self.ncols());
        let (cols, vals) = self.row(r);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if buf.stamps.is_marked(c as usize) {
                acc += v * buf.values[c as usize];
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CscMatrix;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trips = Vec::new();
        for r in 0..nrows as Index {
            for c in 0..ncols as Index {
                if rng.gen_bool(density) {
                    trips.push((r, c, rng.gen_range(-2.0..2.0)));
                }
            }
        }
        CsrMatrix::from_csc(&CscMatrix::from_triplets(nrows, ncols, &trips).unwrap())
    }

    fn random_sparse_vec(n: usize, density: f64, seed: u64) -> (Vec<Index>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx = Vec::new();
        let mut val = Vec::new();
        for i in 0..n as Index {
            if rng.gen_bool(density) {
                idx.push(i);
                val.push(rng.gen_range(-1.0..1.0));
            }
        }
        (idx, val)
    }

    #[test]
    fn gather_is_bit_identical_to_merge_join() {
        for seed in 0..20u64 {
            let m = random_csr(30, 40, 0.2, seed);
            let (idx, val) = random_sparse_vec(40, 0.3, seed + 100);
            let mut buf = ScatteredColumn::new(40);
            buf.load(&idx, &val);
            for r in 0..30 as Index {
                let a = m.row_dot_sparse(r, &idx, &val);
                let b = m.row_dot_scattered(r, &buf);
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} row {r}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn reload_drops_previous_column() {
        let m = random_csr(10, 10, 0.5, 3);
        let mut buf = ScatteredColumn::new(10);
        let (i1, v1) = random_sparse_vec(10, 0.8, 4);
        buf.load(&i1, &v1);
        let (i2, v2) = random_sparse_vec(10, 0.2, 5);
        buf.load(&i2, &v2);
        for r in 0..10 as Index {
            assert_eq!(
                m.row_dot_scattered(r, &buf).to_bits(),
                m.row_dot_sparse(r, &i2, &v2).to_bits(),
                "stale entries leaked into row {r}"
            );
        }
    }

    #[test]
    fn fresh_buffer_has_nothing_loaded() {
        let m = random_csr(5, 5, 0.6, 11);
        let buf = ScatteredColumn::new(5);
        for i in 0..5 as Index {
            assert_eq!(buf.get(i), None, "position {i} loaded before any load()");
        }
        for r in 0..5 as Index {
            assert_eq!(m.row_dot_scattered(r, &buf), 0.0, "never-loaded buffer must act empty");
        }
    }

    #[test]
    fn get_reports_only_current_entries() {
        let mut buf = ScatteredColumn::new(5);
        buf.load(&[1, 3], &[0.5, -0.25]);
        assert_eq!(buf.get(0), None);
        assert_eq!(buf.get(1), Some(0.5));
        assert_eq!(buf.get(3), Some(-0.25));
        buf.load(&[0], &[2.0]);
        assert_eq!(buf.get(1), None, "previous load must be invalidated");
        assert_eq!(buf.get(0), Some(2.0));
    }

    #[test]
    fn empty_column_gathers_zero() {
        let m = random_csr(6, 6, 0.5, 7);
        let mut buf = ScatteredColumn::new(6);
        buf.load(&[], &[]);
        for r in 0..6 as Index {
            assert_eq!(m.row_dot_scattered(r, &buf), 0.0);
        }
    }

    #[test]
    fn epoch_rollover_keeps_correctness() {
        let m = random_csr(12, 12, 0.4, 9);
        let mut buf = ScatteredColumn::new(12);
        // A stale full column right before the wrap: after rollover its
        // stamps (== u32::MAX) must not read as current.
        let all: Vec<Index> = (0..12).collect();
        let ones = vec![1.0; 12];
        buf.force_epoch(u32::MAX - 1);
        buf.load(&all, &ones); // epoch becomes u32::MAX
        let (idx, val) = random_sparse_vec(12, 0.3, 10);
        buf.load(&idx, &val); // wraps: stamps cleared, epoch restarts at 1
        for r in 0..12 as Index {
            assert_eq!(
                m.row_dot_scattered(r, &buf).to_bits(),
                m.row_dot_sparse(r, &idx, &val).to_bits(),
                "rollover leaked stale entries into row {r}"
            );
        }
    }
}
