//! # kdash-sparse
//!
//! Sparse matrix kernels for the K-dash reproduction (*Fujiwara et al.,
//! PVLDB 2012*). Everything §4.2 of the paper needs:
//!
//! * [`CscMatrix`] / [`CsrMatrix`] — compressed sparse column/row storage,
//! * [`triangular`] — sparse triangular solves with *sparse* right-hand
//!   sides using Gilbert–Peierls symbolic reachability (`O(flops)`, not
//!   `O(n)` per solve),
//! * [`lu`] — left-looking sparse LU factorisation `W = LU` following the
//!   paper's Equations (6)–(7) (Doolittle form: unit-diagonal `L`). `W` is
//!   strictly column diagonally dominant, so no pivoting is required,
//! * [`inverse`] — sparse inverses `L⁻¹` and `U⁻¹` (Equations (4)–(5),
//!   computed as `n` sparse solves against unit vectors), plus the
//!   subset driver [`invert_columns_with`] that re-solves only a dirty
//!   column set for the dynamic-update engine,
//! * [`sparsify`] — drop-tolerance sparsified inverses: entries below `ε`
//!   are truncated *during* the column solves (before they propagate),
//!   with per-column dropped ℓ₁ masses returned so the query engine's
//!   certified residual refinement can repair answers back to exact,
//! * [`reach`] — Gilbert–Peierls reach analysis
//!   ([`inverse_dirty_columns`]): given the columns of a triangular
//!   factor that changed, the **exact** set of inverse columns that can
//!   differ — everything outside it is provably bit-identical,
//! * [`rwr`] — the column-normalised transition matrix `A` and
//!   `W = I − (1−c)A` built straight from a [`kdash_graph::CsrGraph`],
//! * [`scatter`] — the scatter/gather proximity kernel: the query column
//!   `L⁻¹ e_q` scattered once into an epoch-stamped dense accumulator
//!   ([`ScatteredColumn`]), each candidate proximity then a gather over
//!   `O(nnz(row))` only — bit-identical to the merge-join kernel it
//!   replaces on the hot path,
//! * [`kernel`] — runtime-dispatched wide gathers: the portable
//!   four-accumulator unrolled kernel and its AVX2 twin (bit-identical to
//!   each other, within `1e-12` of the one-lane reference), selected via
//!   [`GatherKernel`] and a host-validated [`ResolvedKernel`] token;
//!   [`GatherKernel::Adaptive`] adds a deterministic per-row
//!   scalar-vs-wide policy driven by build-time [`RowStat`]s and the
//!   loaded column's density profile,
//! * [`blocked`] — the bandwidth-lean [`BlockedCsr`] row layout: `u16`
//!   column deltas against aligned `u32` block anchors, ~half the index
//!   traffic of flat CSR on fill-dominated inverse rows, bit-identical
//!   values and results,
//! * [`store`] — [`ProximityStore`]: the query engine's `U⁻¹` holder,
//!   uniting both layouts, the per-row policy table, byte-traffic
//!   counters and software-prefetch hooks behind one gather entry point.
//!
//! ## Conventions
//!
//! * `L` from the factorisation is unit lower triangular and stored
//!   *without* its diagonal. `U` stores its diagonal explicitly.
//! * The inverses store their diagonals explicitly (`L⁻¹` has ones,
//!   `U⁻¹` has `1/U_jj`), so a column of `L⁻¹` is directly the solution of
//!   `L x = e_j`.
//! * Column/row index arrays are sorted ascending; values are finite.

pub mod blocked;
pub mod csc;
pub mod csr;
pub mod inverse;
pub mod kernel;
pub mod lu;
pub mod reach;
pub mod rwr;
pub mod scatter;
pub mod sparsify;
pub mod store;
pub mod triangular;

pub use blocked::{BlockedCsr, BLOCK_COLS};
pub use csc::{ColumnUpdate, CscMatrix};
pub use csr::{CsrMatrix, RowUpdate};
pub use inverse::{
    invert_columns_with, invert_lower_unit, invert_lower_unit_with, invert_upper,
    invert_upper_with, InvertOptions,
};
pub use reach::{inverse_dirty_columns, refactor_candidates};
pub use kernel::{
    adaptive_picks_wide, adaptive_picks_wide_with, GatherCounters, GatherKernel, GatherScratch,
    IndexFootprint, ResolvedKernel, RowStat, ADAPTIVE_DRAM_WIDE_HIT_RATE, ADAPTIVE_MIN_WIDE_NNZ,
    ADAPTIVE_RESIDENT_VALUE_BYTES, ADAPTIVE_WIDE_HIT_RATE,
};
pub use lu::{
    refactor_columns, refactor_columns_with, sparse_lu, sparse_lu_with, LuFactors, RefactorReport,
};
pub use rwr::{transition_matrix, w_matrix, DanglingPolicy};
pub use scatter::{ScatteredColumn, DENSITY_BUCKET_COLS};
pub use sparsify::{
    sparsify_columns_with, sparsify_lower_unit_with, sparsify_upper_with, validate_drop_tolerance,
    SparsifiedColumns, SparsifiedInverse,
};
pub use store::{ProximityStore, RowLayout};
pub use triangular::{SolveWorkspace, Triangle};

/// Index type shared with `kdash-graph`.
pub type Index = kdash_graph::NodeId;

/// Errors from sparse kernel construction and factorisation.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// Inconsistent dimensions or malformed index arrays.
    Malformed(String),
    /// A pivot was zero (or absent) during LU — the matrix is singular.
    SingularPivot { column: usize, value: f64 },
    /// Operation requires a square matrix.
    NotSquare { nrows: usize, ncols: usize },
    /// Matrix is not triangular in the requested orientation.
    NotTriangular(String),
    /// Restart probability outside `(0, 1)`.
    InvalidRestartProbability(f64),
    /// Drop tolerance for sparsified inversion must be finite and `>= 0`.
    InvalidDropTolerance(f64),
    /// A [`GatherKernel`] selector the host CPU cannot honour (or an
    /// unknown selector spelling). Only `Auto` falls back; explicit
    /// requests fail typed rather than silently downgrading.
    UnsupportedKernel { requested: String, reason: String },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::Malformed(m) => write!(f, "malformed sparse matrix: {m}"),
            SparseError::SingularPivot { column, value } => {
                write!(f, "singular pivot {value} at column {column}")
            }
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is {nrows}x{ncols}, expected square")
            }
            SparseError::NotTriangular(m) => write!(f, "matrix is not triangular: {m}"),
            SparseError::InvalidRestartProbability(c) => {
                write!(f, "restart probability {c} outside (0, 1)")
            }
            SparseError::InvalidDropTolerance(eps) => {
                write!(f, "drop tolerance {eps} must be finite and >= 0")
            }
            SparseError::UnsupportedKernel { requested, reason } => {
                write!(f, "gather kernel '{requested}' unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SparseError>;
