//! Query-engine headline benchmark (PR 1: scatter/gather + `Searcher`
//! reuse; PR 3: lazy BFS + wide gather kernels; PR 4: blocked u16 index
//! layout + deterministic per-row adaptive kernel policy + prefetched
//! candidate batching).
//!
//! On a ~65k-node RMAT graph (the paper's Social/Email stand-in):
//!
//! * `kernel_hub/*`, `kernel_mixed/*`, `kernel_cold/*` — the gather
//!   kernels in isolation over three row populations (hit-dominated hub
//!   candidates, the PR 1 strided mix, and miss-dominated cold rows),
//!   each under **both** layouts (`flat_*` vs `blocked_*`) and every
//!   kernel including `adaptive`. These are the three series the
//!   adaptive-policy acceptance compares: adaptive must match the best
//!   fixed kernel on all three simultaneously.
//! * `query_engine/*` — end-to-end top-k sweeps: merge-join reference,
//!   the PR 1 eager-scalar baseline, one reused lazy `Searcher` per
//!   kernel on the blocked (default) layout, plus `lazy_adaptive_flat`
//!   to isolate the layout's contribution.
//! * `query_engine_k5/*` — the traversal-bound light-query series.
//!
//! The setup prints the index-bytes/nnz report (blocked vs flat), the
//! lazy-frontier counters, per-population stamp-hit rates with the
//! policy's predictions, and the per-query gather-byte counters — the
//! observability the BENCH_PR4.json notes are written from.
//! `KDASH_BENCH_SCALE` overrides the RMAT scale (default 16).

use criterion::{criterion_group, criterion_main, Criterion};
use kdash_core::{GatherKernel, IndexOptions, KdashIndex, RowLayout, Searcher, TopKResult};
use kdash_datagen::{rmat, RmatParams};
use kdash_graph::NodeId;
use kdash_sparse::{GatherCounters, GatherScratch, ProximityStore, ScatteredColumn};

/// The fixed kernels this host can run, labelled for the report.
fn host_kernels() -> Vec<(&'static str, GatherKernel)> {
    let mut kernels = vec![
        ("scalar", GatherKernel::Scalar),
        ("unrolled4", GatherKernel::Unrolled4),
    ];
    if let Ok(resolved) = GatherKernel::Simd.resolve() {
        kernels.push((resolved.name(), GatherKernel::Simd));
    }
    kernels.push(("adaptive", GatherKernel::Adaptive));
    kernels
}

/// Sweeps `rows` through one store/kernel pair, returning the checksum.
fn sweep(
    store: &ProximityStore,
    kernel: GatherKernel,
    rows: &[NodeId],
    column: &ScatteredColumn,
    scratch: &mut GatherScratch,
) -> f64 {
    let resolved = kernel.resolve().expect("host kernel");
    let mut counters = GatherCounters::default();
    let mut acc = 0.0;
    for &r in rows {
        acc += store.row_gather(resolved, r, column, scratch, &mut counters);
    }
    std::hint::black_box(acc)
}

fn bench(c: &mut Criterion) {
    let scale: u32 = std::env::var("KDASH_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let n = 1usize << scale;
    let graph = rmat(scale, n * 4, RmatParams::default(), 42);
    let t0 = std::time::Instant::now();
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index build");
    let flat_index = index.with_layout(RowLayout::Flat);
    let blocked = index.uinv_rows();
    let flat = flat_index.uinv_rows();
    println!(
        "query_engine setup: rmat scale {scale}: {} nodes, {} edges; index built in {:.1?} \
         (nnz L-inv {}, nnz U-inv {})",
        graph.num_nodes(),
        graph.num_edges(),
        t0.elapsed(),
        index.stats().nnz_l_inv,
        index.stats().nnz_u_inv,
    );
    println!(
        "index bytes/nnz: blocked {:.3} vs flat {:.3} ({:.1}% index-traffic cut, {} runs)",
        blocked.index_bytes() as f64 / blocked.nnz() as f64,
        flat.index_bytes() as f64 / flat.nnz() as f64,
        100.0 * (1.0 - blocked.index_bytes() as f64 / flat.index_bytes() as f64),
        blocked.as_blocked().expect("blocked").num_runs(),
    );

    // Deterministic query mix over non-dangling nodes: hubs and leaves both
    // appear, which is exactly the skew the engine must absorb. One
    // measured iteration sweeps the *whole* mix, so samples are comparable
    // (per-query latencies vary by orders of magnitude).
    let queries: Vec<NodeId> = kdash_bench::queries_for(&graph, 32);
    let k = 50;

    // Lazy-frontier counters plus the new gather-byte counters over the
    // mix, per kernel class.
    {
        let mut searcher = index.searcher();
        let (mut expanded, mut discovered, mut full, mut early) = (0usize, 0usize, 0usize, 0usize);
        let (mut bytes, mut val_bytes, mut r_scalar, mut r_wide) = (0usize, 0usize, 0usize, 0usize);
        for &q in &queries {
            let lazy = searcher.top_k(q, k).expect("query");
            let eager = index.top_k_merge_join(q, k).expect("query");
            expanded += lazy.stats.frontier_expanded;
            discovered += lazy.stats.reachable;
            full += eager.stats.reachable;
            early += lazy.stats.terminated_early as usize;
            bytes += lazy.stats.bytes_touched;
            val_bytes += lazy.stats.value_bytes_touched;
            r_scalar += lazy.stats.rows_scalar;
            r_wide += lazy.stats.rows_wide;
        }
        println!(
            "lazy frontier over {} queries (k={k}): expanded {expanded} / discovered \
             {discovered} / full reachable {full} ({} early-terminated); \
             traversal work = {:.1}% of eager",
            queries.len(),
            early,
            100.0 * expanded as f64 / full.max(1) as f64,
        );
        println!(
            "adaptive gathers (blocked): rows scalar {r_scalar} / wide {r_wide}; index bytes \
             {bytes}, model value bytes {val_bytes}"
        );
    }

    // Kernel-level comparison, isolated from BFS and heap costs: the
    // *hub-most* query of the mix (densest scattered `L⁻¹` column — the
    // per-query cost profile the paper's skewed datasets stress) against
    // three row populations of the stored U⁻¹.
    let hub_query = *queries
        .iter()
        .max_by_key(|&&q| index.linv_query_column(q).0.len())
        .expect("non-empty query mix");
    let (col_idx, col_val) = index.linv_query_column(hub_query);
    println!("kernel column: query {hub_query}, nnz(L⁻¹ e_q) = {}", col_idx.len());
    let mut column = ScatteredColumn::new(graph.num_nodes());
    column.load(col_idx, col_val);
    let mut scratch = GatherScratch::with_capacity(blocked.max_row_nnz());

    // Row populations (analysed on the flat twin, benched on both
    // layouts):
    //  * mixed — the PR 1 stride over all rows vs the hub column
    //            (continuity baseline);
    //  * hub   — the 512 highest-overlap rows vs the hub column
    //            (hit-dominated: the wide kernels' best case);
    //  * cold  — the same dense rows against the *sparsest* query column
    //            of the mix (miss-dominated: PR 3's regression case —
    //            big DRAM-resident rows, almost every stamp check fails).
    let flat_csr = flat.as_flat().expect("flat twin");
    let mixed: Vec<NodeId> = (0..graph.num_nodes() as NodeId).step_by(7).collect();
    let mut by_overlap: Vec<(usize, usize, NodeId)> = (0..graph.num_nodes() as NodeId)
        .map(|r| {
            let (cols, _) = flat_csr.row(r);
            let matched = cols.iter().filter(|&&c| column.get(c).is_some()).count();
            (matched, cols.len(), r)
        })
        .collect();
    by_overlap.sort_by_key(|&(matched, nnz, r)| (std::cmp::Reverse(matched), nnz, r));
    let hubs: Vec<NodeId> = by_overlap.iter().take(512).map(|&(_, _, r)| r).collect();

    let cold_query = *queries
        .iter()
        .filter(|&&q| index.linv_query_column(q).0.len() > 0)
        .min_by_key(|&&q| index.linv_query_column(q).0.len())
        .expect("non-empty query mix");
    let (cold_idx, cold_val) = index.linv_query_column(cold_query);
    println!("cold column: query {cold_query}, nnz(L⁻¹ e_q) = {}", cold_idx.len());
    let mut cold_column = ScatteredColumn::new(graph.num_nodes());
    cold_column.load(cold_idx, cold_val);

    // Per-population observability: actual stamp-hit rate vs what the
    // policy decides, and how many rows it hands to the wide kernel.
    for (label, rows, col) in [
        ("hub", &hubs, &column),
        ("mixed", &mixed, &column),
        ("cold", &hubs, &cold_column),
    ] {
        let (mut nnz_total, mut matched_total, mut wide_rows) = (0usize, 0usize, 0usize);
        for &r in rows.iter() {
            let (cols, _) = flat_csr.row(r);
            nnz_total += cols.len();
            matched_total += cols.iter().filter(|&&c| col.get(c).is_some()).count();
            let stat = blocked.row_stat(r);
            if kdash_sparse::adaptive_picks_wide(stat, col) {
                wide_rows += 1;
            }
        }
        println!(
            "{label} rows: {} rows, avg nnz {:.0}, actual stamp-hit {:.1}%, policy sends \
             {wide_rows} wide",
            rows.len(),
            nnz_total as f64 / rows.len().max(1) as f64,
            100.0 * matched_total as f64 / nnz_total.max(1) as f64,
        );
    }

    // The three kernel series groups × both layouts × every kernel.
    for (group_name, rows, col) in [
        ("kernel_hub", &hubs, &column),
        ("kernel_mixed", &mixed, &column),
        ("kernel_cold", &hubs, &cold_column),
    ] {
        let mut group = c.benchmark_group(group_name);
        group.sample_size(30);
        if group_name == "kernel_mixed" {
            // Continuity with BENCH_PR1/PR3: the merge join over the mix,
            // on the flat matrix those PRs measured (the blocked decode
            // would otherwise pollute the cross-PR comparison).
            let rows = rows.clone();
            group.bench_function("merge_join", |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &r in &rows {
                        acc += flat_csr.row_dot_sparse(r, col_idx, col_val);
                    }
                    std::hint::black_box(acc)
                });
            });
        }
        for (layout_label, store) in [("flat", flat), ("blocked", blocked)] {
            for (kernel_label, kernel) in host_kernels() {
                group.bench_function(format!("{layout_label}_{kernel_label}"), |b| {
                    b.iter(|| sweep(store, kernel, rows, col, &mut scratch));
                });
            }
        }
        group.finish();
    }

    let mut group = c.benchmark_group("query_engine");
    group.sample_size(20);

    group.bench_function("merge_join_transient", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += index.top_k_merge_join(q, k).expect("query").items.len();
            }
            std::hint::black_box(total)
        });
    });

    // The PR 1 path: reused Searcher, scalar gather, whole BFS tree
    // drained before the search loop — measured on the *flat* layout it
    // was built for, in-run.
    {
        let mut searcher =
            Searcher::with_kernel(&flat_index, GatherKernel::Scalar).expect("scalar");
        let mut out = TopKResult::default();
        group.bench_function("eager_reused_scalar_flat", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_eager_into(q, k, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
    }

    // One reused lazy Searcher per kernel on the default (blocked) layout
    // — the serving configuration — plus the flat/adaptive twin so the
    // layout's own contribution is visible.
    for (label, kernel) in host_kernels() {
        let mut searcher = Searcher::with_kernel(&index, kernel).expect("host kernel");
        let mut out = TopKResult::default();
        group.bench_function(format!("lazy_reused_{label}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_into(q, k, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
    }
    {
        let mut searcher =
            Searcher::with_kernel(&flat_index, GatherKernel::Adaptive).expect("adaptive");
        let mut out = TopKResult::default();
        group.bench_function("lazy_adaptive_flat", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_into(q, k, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
    }
    group.finish();

    // Light queries (k = 5): Lemma 2 fires after a couple of layers, so
    // the *traversal* — not the gather kernel — is the per-query cost.
    let mut light = c.benchmark_group("query_engine_k5");
    light.sample_size(20);
    {
        let k_light = 5;
        let mut searcher = index.searcher();
        let (mut expanded, mut full) = (0usize, 0usize);
        let mut out = TopKResult::default();
        for &q in &queries {
            searcher.top_k_into(q, k_light, &mut out).expect("query");
            expanded += out.stats.frontier_expanded;
            searcher.top_k_eager_into(q, k_light, &mut out).expect("query");
            full += out.stats.frontier_expanded;
        }
        println!(
            "k=5 frontier: lazy expands {expanded} nodes vs eager {full} \
             ({:.1}% of the eager traversal)",
            100.0 * expanded as f64 / full.max(1) as f64
        );
        light.bench_function("eager_reused_adaptive", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_eager_into(q, k_light, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
        light.bench_function("lazy_reused_adaptive", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_into(q, k_light, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
    }
    light.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
