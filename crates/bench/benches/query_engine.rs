//! PR 1 headline benchmark: the query-engine overhaul.
//!
//! On a ~50k-node RMAT graph (the paper's Social/Email stand-in), compares
//!
//! * the original per-candidate **merge-join** kernel
//!   (`top_k_merge_join`, `O(nnz(row) + nnz(col))` per candidate, fresh
//!   buffers per query) against the **scatter/gather** kernel (query
//!   column scattered once, `O(nnz(row))` gather per candidate), and
//! * a **transient** `Searcher` per query (what `KdashIndex::top_k` does)
//!   against a **reused** one (`Searcher::top_k_into`, allocation-free
//!   after warm-up).
//!
//! Headline numbers land in `BENCH_PR1.json` at the repo root.
//! `KDASH_BENCH_SCALE` overrides the RMAT scale (default 16 ⇒ 2^16 =
//! 65,536 nodes) for quick smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use kdash_core::{IndexOptions, KdashIndex, TopKResult};
use kdash_datagen::{rmat, RmatParams};
use kdash_graph::NodeId;

fn bench(c: &mut Criterion) {
    let scale: u32 = std::env::var("KDASH_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let n = 1usize << scale;
    let graph = rmat(scale, n * 4, RmatParams::default(), 42);
    let t0 = std::time::Instant::now();
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index build");
    println!(
        "query_engine setup: rmat scale {scale}: {} nodes, {} edges; index built in {:.1?} \
         (nnz L-inv {}, nnz U-inv {})",
        graph.num_nodes(),
        graph.num_edges(),
        t0.elapsed(),
        index.stats().nnz_l_inv,
        index.stats().nnz_u_inv,
    );

    // Deterministic query mix over non-dangling nodes: hubs and leaves both
    // appear, which is exactly the skew the engine must absorb. One
    // measured iteration sweeps the *whole* mix, so samples are comparable
    // (per-query latencies vary by orders of magnitude).
    let queries: Vec<NodeId> = kdash_bench::queries_for(&graph, 32);
    let k = 50;

    // Kernel-level comparison, isolated from BFS and heap costs: one query
    // column against every non-empty U⁻¹ row it will meet in a search.
    let mut kernels = c.benchmark_group("proximity_kernel");
    kernels.sample_size(30);
    {
        let (col_idx, col_val) = index.linv_query_column(queries[0]);
        let uinv = index.uinv_rows();
        let rows: Vec<NodeId> = (0..graph.num_nodes() as NodeId).step_by(7).collect();
        kernels.bench_function("merge_join", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &r in &rows {
                    acc += uinv.row_dot_sparse(r, col_idx, col_val);
                }
                std::hint::black_box(acc)
            });
        });
        kernels.bench_function("scatter_gather", |b| {
            let mut column = kdash_sparse::ScatteredColumn::new(graph.num_nodes());
            column.load(col_idx, col_val);
            b.iter(|| {
                let mut acc = 0.0;
                for &r in &rows {
                    acc += uinv.row_dot_scattered(r, &column);
                }
                std::hint::black_box(acc)
            });
        });
    }
    kernels.finish();

    let mut group = c.benchmark_group("query_engine");
    group.sample_size(20);

    group.bench_function("merge_join_transient", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += index.top_k_merge_join(q, k).expect("query").items.len();
            }
            std::hint::black_box(total)
        });
    });

    group.bench_function("scatter_gather_transient", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += index.top_k(q, k).expect("query").items.len();
            }
            std::hint::black_box(total)
        });
    });

    group.bench_function("scatter_gather_reused", |b| {
        let mut searcher = index.searcher();
        let mut out = TopKResult::default();
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                searcher.top_k_into(q, k, &mut out).expect("query");
                total += out.items.len();
            }
            std::hint::black_box(total)
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
