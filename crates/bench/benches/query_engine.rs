//! Query-engine headline benchmark (PR 1: scatter/gather + `Searcher`
//! reuse; PR 3: lazy layer-by-layer BFS + runtime-dispatched wide gather
//! kernels).
//!
//! On a ~65k-node RMAT graph (the paper's Social/Email stand-in):
//!
//! * `proximity_kernel/*` — the gather kernels in isolation (merge join,
//!   1-lane scalar gather, 4-accumulator unrolled, AVX2 where the host has
//!   it) over a stride of all `U⁻¹` rows;
//! * `proximity_kernel_hub/*` — the same kernels over the **densest** rows
//!   (hub candidates), where the wide kernels' instruction-level
//!   parallelism matters most;
//! * `query_engine/*` — end-to-end top-k sweeps: the eager merge-join
//!   reference vs one reused lazy `Searcher` per kernel.
//!
//! The setup also prints the lazy-frontier counters over the query mix
//! (`frontier expanded / discovered / full reachable`): the expanded count
//! is the traversal work the fused BFS actually pays, the full count what
//! the eager path paid before.
//!
//! Headline numbers land in `BENCH_PR3.json` at the repo root (PR 1's in
//! `BENCH_PR1.json`). `KDASH_BENCH_SCALE` overrides the RMAT scale
//! (default 16 ⇒ 2^16 = 65,536 nodes) for quick smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use kdash_core::{GatherKernel, IndexOptions, KdashIndex, Searcher, TopKResult};
use kdash_datagen::{rmat, RmatParams};
use kdash_graph::NodeId;

/// The kernels this host can run, labelled for the report.
fn host_kernels() -> Vec<(&'static str, GatherKernel)> {
    let mut kernels = vec![
        ("scalar", GatherKernel::Scalar),
        ("unrolled4", GatherKernel::Unrolled4),
    ];
    if let Ok(resolved) = GatherKernel::Simd.resolve() {
        // Label with the concrete dispatch target (e.g. "avx2").
        kernels.push((resolved.name(), GatherKernel::Simd));
    }
    kernels
}

fn bench(c: &mut Criterion) {
    let scale: u32 = std::env::var("KDASH_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let n = 1usize << scale;
    let graph = rmat(scale, n * 4, RmatParams::default(), 42);
    let t0 = std::time::Instant::now();
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index build");
    println!(
        "query_engine setup: rmat scale {scale}: {} nodes, {} edges; index built in {:.1?} \
         (nnz L-inv {}, nnz U-inv {})",
        graph.num_nodes(),
        graph.num_edges(),
        t0.elapsed(),
        index.stats().nnz_l_inv,
        index.stats().nnz_u_inv,
    );

    // Deterministic query mix over non-dangling nodes: hubs and leaves both
    // appear, which is exactly the skew the engine must absorb. One
    // measured iteration sweeps the *whole* mix, so samples are comparable
    // (per-query latencies vary by orders of magnitude).
    let queries: Vec<NodeId> = kdash_bench::queries_for(&graph, 32);
    let k = 50;

    // Lazy-frontier counters over the mix: what the fused BFS pays
    // (expanded), what it enumerates (discovered) and what the eager path
    // enumerated (full reachable, from the merge-join reference).
    {
        let mut searcher = index.searcher();
        let (mut expanded, mut discovered, mut full, mut early) = (0usize, 0usize, 0usize, 0usize);
        for &q in &queries {
            let lazy = searcher.top_k(q, k).expect("query");
            let eager = index.top_k_merge_join(q, k).expect("query");
            expanded += lazy.stats.frontier_expanded;
            discovered += lazy.stats.reachable;
            full += eager.stats.reachable;
            early += lazy.stats.terminated_early as usize;
        }
        println!(
            "lazy frontier over {} queries (k={k}): expanded {expanded} / discovered \
             {discovered} / full reachable {full} ({} early-terminated); \
             traversal work = {:.1}% of eager",
            queries.len(),
            early,
            100.0 * expanded as f64 / full.max(1) as f64,
        );
    }

    // Kernel-level comparison, isolated from BFS and heap costs: the
    // *hub-most* query of the mix (densest scattered `L⁻¹` column — the
    // per-query cost profile the paper's skewed datasets stress) against
    // the U⁻¹ rows a search meets.
    let hub_query = *queries
        .iter()
        .max_by_key(|&&q| index.linv_query_column(q).0.len())
        .expect("non-empty query mix");
    let (col_idx, col_val) = index.linv_query_column(hub_query);
    println!("kernel column: query {hub_query}, nnz(L⁻¹ e_q) = {}", col_idx.len());
    let uinv = index.uinv_rows();
    let mut column = kdash_sparse::ScatteredColumn::new(graph.num_nodes());
    column.load(col_idx, col_val);

    // The strided mix (PR 1's series): mostly rows *far* from the query,
    // whose stamp checks nearly all fail — the branchy scalar gather skips
    // almost every multiply there, so it is the right default for cold
    // candidates and the continuity baseline against BENCH_PR1.json.
    let mut kernels = c.benchmark_group("proximity_kernel");
    kernels.sample_size(30);
    {
        let rows: Vec<NodeId> = (0..graph.num_nodes() as NodeId).step_by(7).collect();
        kernels.bench_function("merge_join", |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for &r in &rows {
                    acc += uinv.row_dot_sparse(r, col_idx, col_val);
                }
                std::hint::black_box(acc)
            });
        });
        for (label, kernel) in host_kernels() {
            let resolved = kernel.resolve().expect("host kernel");
            kernels.bench_function(label, |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &r in &rows {
                        acc += uinv.row_dot_scattered_with(resolved, r, &column);
                    }
                    std::hint::black_box(acc)
                });
            });
        }
    }
    kernels.finish();

    // Candidate (hub) rows: the rows a search actually computes proximities
    // over are the ones overlapping the query column — dense rows of nodes
    // near the query, where the stamp check *passes* and the single-lane
    // gather serialises behind its accumulator. Rank rows by matched
    // nonzeros against the loaded column and take the hottest 512: this is
    // the kernel's latency-bound case, where the four independent
    // accumulators pay off.
    let mut hub_group = c.benchmark_group("proximity_kernel_hub");
    hub_group.sample_size(30);
    {
        let mut by_overlap: Vec<(usize, usize, NodeId)> = (0..graph.num_nodes() as NodeId)
            .map(|r| {
                let (cols, _) = uinv.row(r);
                let matched = cols.iter().filter(|&&c| column.get(c).is_some()).count();
                (matched, cols.len(), r)
            })
            .collect();
        by_overlap.sort_by_key(|&(matched, nnz, r)| (std::cmp::Reverse(matched), nnz, r));
        let hubs: Vec<NodeId> = by_overlap.iter().take(512).map(|&(_, _, r)| r).collect();
        let (total_nnz, total_matched): (usize, usize) = by_overlap
            .iter()
            .take(512)
            .fold((0, 0), |(n, m), &(matched, nnz, _)| (n + nnz, m + matched));
        println!(
            "hub rows: 512 highest-overlap U⁻¹ rows, avg nnz {:.0}, avg stamp-hit rate {:.0}%",
            total_nnz as f64 / 512.0,
            100.0 * total_matched as f64 / total_nnz.max(1) as f64,
        );
        for (label, kernel) in host_kernels() {
            let resolved = kernel.resolve().expect("host kernel");
            hub_group.bench_function(label, |b| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &r in &hubs {
                        acc += uinv.row_dot_scattered_with(resolved, r, &column);
                    }
                    std::hint::black_box(acc)
                });
            });
        }
    }
    hub_group.finish();

    let mut group = c.benchmark_group("query_engine");
    group.sample_size(20);

    group.bench_function("merge_join_transient", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &q in &queries {
                total += index.top_k_merge_join(q, k).expect("query").items.len();
            }
            std::hint::black_box(total)
        });
    });

    // The PR 1 path: reused Searcher, scalar gather, whole BFS tree
    // drained before the search loop — the baseline the lazy frontier's
    // end-to-end saving is measured against, in-run.
    {
        let mut searcher = Searcher::with_kernel(&index, GatherKernel::Scalar).expect("scalar");
        let mut out = TopKResult::default();
        group.bench_function("eager_reused_scalar", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_eager_into(q, k, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
    }

    // One reused lazy Searcher per kernel — the serving configuration.
    for (label, kernel) in host_kernels() {
        let mut searcher = Searcher::with_kernel(&index, kernel).expect("host kernel");
        let mut out = TopKResult::default();
        group.bench_function(format!("lazy_reused_{label}"), |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_into(q, k, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
    }

    group.finish();

    // Light queries (k = 5): Lemma 2 fires after a couple of layers, so
    // the *traversal* — not the gather kernel — is the per-query cost.
    // This is the lazy frontier's headline case: the eager path still
    // enumerates each query's whole reachable set (tens of thousands of
    // nodes here) before computing a handful of proximities.
    let mut light = c.benchmark_group("query_engine_k5");
    light.sample_size(20);
    {
        let k_light = 5;
        let mut searcher = Searcher::with_kernel(&index, GatherKernel::Scalar).expect("scalar");
        let (mut expanded, mut full) = (0usize, 0usize);
        let mut out = TopKResult::default();
        for &q in &queries {
            searcher.top_k_into(q, k_light, &mut out).expect("query");
            expanded += out.stats.frontier_expanded;
            searcher.top_k_eager_into(q, k_light, &mut out).expect("query");
            full += out.stats.frontier_expanded;
        }
        println!(
            "k=5 frontier: lazy expands {expanded} nodes vs eager {full} \
             ({:.1}% of the eager traversal)",
            100.0 * expanded as f64 / full.max(1) as f64
        );
        light.bench_function("eager_reused_scalar", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_eager_into(q, k_light, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
        light.bench_function("lazy_reused_scalar", |b| {
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    searcher.top_k_into(q, k_light, &mut out).expect("query");
                    total += out.items.len();
                }
                std::hint::black_box(total)
            });
        });
    }
    light.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
