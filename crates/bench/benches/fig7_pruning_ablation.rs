//! Criterion view of Figure 7: the pruned search against the no-pruning
//! ablation on every dataset profile.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdash_bench::{all_datasets, queries_for, HarnessConfig};
use kdash_core::{IndexOptions, KdashIndex};

fn bench(c: &mut Criterion) {
    let config = HarnessConfig { target_nodes: 800, queries: 8, seed: 42 };
    let mut group = c.benchmark_group("fig7_pruning");
    group.sample_size(15);
    for (profile, graph) in all_datasets(&config) {
        let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");
        let queries = queries_for(&graph, config.queries);
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("pruned", profile.name()),
            &(),
            |b, _| {
                b.iter(|| {
                    let q = queries[i % queries.len()];
                    i += 1;
                    std::hint::black_box(index.top_k(q, 5).expect("query"))
                })
            },
        );
        let mut j = 0usize;
        group.bench_with_input(
            BenchmarkId::new("unpruned", profile.name()),
            &(),
            |b, _| {
                b.iter(|| {
                    let q = queries[j % queries.len()];
                    j += 1;
                    std::hint::black_box(index.top_k_unpruned(q, 5).expect("query"))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
