//! Criterion view of Figure 6: index precomputation time per reordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdash_bench::{dataset, HarnessConfig};
use kdash_core::{IndexOptions, KdashIndex, NodeOrdering};
use kdash_datagen::DatasetProfile;

fn bench(c: &mut Criterion) {
    let config = HarnessConfig { target_nodes: 600, queries: 4, seed: 42 };
    let graph = dataset(DatasetProfile::Dictionary, &config);
    let mut group = c.benchmark_group("fig6_precompute");
    group.sample_size(10);
    for ordering in [
        NodeOrdering::Degree,
        NodeOrdering::Cluster,
        NodeOrdering::Hybrid,
        NodeOrdering::Random { seed: 42 },
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(ordering.name()),
            &ordering,
            |b, &ordering| {
                b.iter(|| {
                    std::hint::black_box(
                        KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() })
                            .expect("build"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
