//! Serving-tier benchmark for the epoch-snapshot read path (PR 10):
//! what the `kdash-serve` stack delivers under a closed-loop query load,
//! what concurrent epoch swaps cost the readers, and where admission
//! control starts shedding.
//!
//! Four series, all on the same RMAT index:
//!
//! * **read-only throughput vs workers** — closed-loop reader clients
//!   against worker pools of 1/2/4; reported per pool: queries served,
//!   throughput, p50/p99 latency. On a single-core container extra
//!   workers cannot scale (they time-slice one CPU) — the series then
//!   documents the *overhead* of oversubscription, not speedup.
//! * **mixed latency vs update rate** — the same closed-loop read load
//!   while a writer applies single-edge batches at a paced rate
//!   (0 = the read-only baseline). The steady series uses the
//!   tiny-reach edit class (inserts from in-degree-0 sources, the
//!   ~ms-apply class of `recovery_time.rs`); the acceptance bar — read
//!   p99 under write load within 2× the read-only p99 at the same
//!   offered load — is measured there. One extra trial uses
//!   uniform-random (heavy-reach) edges, where a single apply can cost
//!   seconds of CPU: on one core that apply starves the readers
//!   outright, bounding what *any* snapshot scheme can promise without
//!   a second core for the writer.
//! * **freshness lag distribution** — per-query lag samples (acked
//!   epochs behind) and swap-install latency from the mixed runs; lag
//!   is non-zero only inside the swap-install window.
//! * **shed threshold sweep** — an open-loop submitter floods the queue
//!   past one worker's drain rate at several queue capacities; reported:
//!   offered, shed rate, worst queue depth. Every rejection is the typed
//!   `Overloaded` error, never a panic or a hang.
//!
//! Direct wall-clock measurement (no criterion: each trial spins up
//! threads and mutates engine state).
//!
//! Environment knobs:
//!
//! * `KDASH_BENCH_SCALE`     — RMAT scale (default 12 ⇒ 4,096 nodes).
//! * `KDASH_SERVE_SECONDS`   — seconds per closed-loop trial (default 2).
//! * `KDASH_SERVE_WORKERS`   — comma list for the worker sweep
//!   (default `1,2,4`).
//! * `KDASH_SERVE_CLIENTS`   — closed-loop reader threads (default 2).
//! * `KDASH_SERVE_RATES`     — writes/second for the mixed series
//!   (default `0,5,20`).
//! * `KDASH_SERVE_QUEUES`    — queue capacities for the shed sweep
//!   (default `4,16,64`).
//!
//! Headline numbers land in `BENCH_PR10.json` at the repo root.

use kdash_core::KdashIndex;
use kdash_core::IndexBuilder;
use kdash_datagen::{rmat, RmatParams};
use kdash_dynamic::{DynamicIndex, UpdateBatch};
use kdash_graph::EdgeEdit;
use kdash_serve::{EpochWriter, MetricsSnapshot, ServeError, ServeLoop, ServeOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

/// The write workload's edit class. A single-edge apply's cost is set by
/// its dirty reach, and on one core the writer's CPU time is stolen
/// straight from the readers — so the class choice *is* the contention
/// model.
#[derive(Clone, Copy)]
enum EditClass {
    /// Inserts from in-degree-0 sources (the provably-tiny-reach class
    /// of `recovery_time.rs`): ~ms applies, the steady-drip OLTP shape.
    TinyReach,
    /// Uniform random edges: a core insert can dirty most of the index
    /// (seconds of CPU at this scale) — the starvation worst case.
    HeavyReach,
}

/// Fresh inserts (checked against the current permuted graph) and
/// deletes from the pool this run inserted — always a valid batch.
fn synthetic_batch(
    rng: &mut StdRng,
    inserted: &mut Vec<(u32, u32)>,
    index: &KdashIndex,
    class: EditClass,
    fresh_sources: &[u32],
) -> UpdateBatch {
    let n = index.num_nodes() as u32;
    let edit = loop {
        if !inserted.is_empty() && (inserted.len() >= 32 || rng.gen_bool(0.5)) {
            let at = rng.gen_range(0..inserted.len());
            let (src, dst) = inserted.swap_remove(at);
            break EdgeEdit::Delete { src, dst };
        }
        let src = match class {
            EditClass::TinyReach => fresh_sources[rng.gen_range(0..fresh_sources.len())],
            EditClass::HeavyReach => rng.gen_range(0..n),
        };
        let dst = rng.gen_range(0..n);
        let perm = index.permutation();
        if src == dst || index.permuted_graph().has_edge(perm.new_of(src), perm.new_of(dst)) {
            continue;
        }
        inserted.push((src, dst));
        break EdgeEdit::Insert { src, dst, weight: 1.0 };
    };
    UpdateBatch::new(vec![edit]).expect("valid synthetic edit")
}

/// Nodes with in-degree 0 in `graph` — inserting *out of* one keeps its
/// factor column's reach tiny (see `recovery_time.rs`).
fn in_degree_zero_sources(graph: &kdash_graph::CsrGraph) -> Vec<u32> {
    let n = graph.num_nodes();
    let mut in_degree = vec![0usize; n];
    for (_, d, _) in graph.edges() {
        in_degree[d as usize] += 1;
    }
    (0..n as u32).filter(|&v| in_degree[v as usize] == 0).collect()
}

struct TrialOut {
    reads: u64,
    elapsed: f64,
    writes_acked: u64,
    metrics: MetricsSnapshot,
}

/// One closed-loop trial: `clients` reader threads issue blocking
/// queries as fast as answers come back; a writer applies single-edge
/// batches at `writes_per_sec` (0 = read-only).
fn run_closed_loop(
    base: &KdashIndex,
    workers: usize,
    clients: usize,
    seconds: f64,
    writes_per_sec: f64,
    class: EditClass,
    fresh_sources: &[u32],
    seed: u64,
) -> TrialOut {
    let n = base.num_nodes() as u32;
    let engine = DynamicIndex::new(base.clone()).expect("attach engine");
    let (mut writer, store) = EpochWriter::new(engine);
    let serve_loop = ServeLoop::start(
        Arc::clone(&store),
        ServeOptions { workers, queue_capacity: 1024, max_batch: 32, ..Default::default() },
    )
    .expect("start loop");
    writer.attach_metrics(serve_loop.metrics());

    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(seconds);
    let mut writes_acked = 0u64;

    std::thread::scope(|scope| {
        let serve_ref = &serve_loop;
        let stop_ref = &stop;
        let reads_ref = &reads;
        for c in 0..clients {
            let mut rng = StdRng::seed_from_u64(seed ^ (0xC11E_0000 + c as u64));
            scope.spawn(move || {
                while !stop_ref.load(Ordering::Acquire) {
                    let q = rng.gen_range(0..n);
                    if serve_ref.query_blocking(q, 10).is_ok() {
                        reads_ref.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5712E);
        let mut inserted = Vec::new();
        let interval = if writes_per_sec > 0.0 {
            Some(Duration::from_secs_f64(1.0 / writes_per_sec))
        } else {
            None
        };
        let mut next_write = started;
        while Instant::now() < deadline {
            match interval {
                None => std::thread::sleep(Duration::from_millis(5)),
                Some(step) => {
                    if Instant::now() < next_write {
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    }
                    let batch = synthetic_batch(
                        &mut rng,
                        &mut inserted,
                        writer.engine().index(),
                        class,
                        fresh_sources,
                    );
                    if writer.apply(&batch).is_ok() {
                        writes_acked += 1;
                    }
                    next_write += step;
                }
            }
        }
        stop.store(true, Ordering::Release);
    });

    let elapsed = started.elapsed().as_secs_f64();
    let metrics = serve_loop.metrics().snapshot();
    serve_loop.shutdown();
    TrialOut { reads: reads.load(Ordering::Relaxed), elapsed, writes_acked, metrics }
}

/// One open-loop shed trial: a submitter floods `submit` without waiting
/// for answers while one worker drains; admission control does the rest.
fn run_shed_sweep(base: &KdashIndex, queue_capacity: usize, seconds: f64, seed: u64) -> TrialOut {
    let n = base.num_nodes() as u32;
    let engine = DynamicIndex::new(base.clone()).expect("attach engine");
    let (_writer, store) = EpochWriter::new(engine);
    let serve_loop = ServeLoop::start(
        Arc::clone(&store),
        ServeOptions { workers: 1, queue_capacity, max_batch: 8, ..Default::default() },
    )
    .expect("start loop");

    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(seconds);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pending = Vec::new();
    while Instant::now() < deadline {
        let q = rng.gen_range(0..n);
        match serve_loop.submit(q, 10) {
            Ok(p) => pending.push(p),
            Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
            Err(other) => panic!("unexpected submit error: {other}"),
        }
        // Harvest finished requests so the pending list stays bounded.
        if pending.len() >= 4096 {
            pending = pending.into_iter().filter_map(|p| p.try_wait().err()).collect();
        }
    }
    for p in pending {
        let _ = p.wait();
    }
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = serve_loop.metrics().snapshot();
    serve_loop.shutdown();
    TrialOut { reads: metrics.completed, elapsed, writes_acked: 0, metrics }
}

fn main() {
    let scale = env_usize("KDASH_BENCH_SCALE", 12);
    let seconds = env_f64("KDASH_SERVE_SECONDS", 2.0);
    let worker_sweep = env_list("KDASH_SERVE_WORKERS", &[1, 2, 4]);
    let clients = env_usize("KDASH_SERVE_CLIENTS", 2);
    let rates = env_list("KDASH_SERVE_RATES", &[0, 5, 20]);
    let queues = env_list("KDASH_SERVE_QUEUES", &[4, 16, 64]);
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let graph = rmat(scale as u32, (1usize << scale) * 8, RmatParams::default(), 42);
    let index = IndexBuilder::new().threads(0).build(&graph).expect("build index");
    let fresh_sources = in_degree_zero_sources(&graph);
    println!(
        "serving_tier: RMAT scale {scale} ({} nodes, {} edges), {cores} hardware thread(s), \
         {clients} closed-loop client(s), {seconds}s per trial",
        graph.num_nodes(),
        graph.num_edges(),
    );
    if cores == 1 {
        println!(
            "NOTE: single hardware thread — worker counts above 1 time-slice one CPU; the \
             worker sweep measures oversubscription overhead, not scaling"
        );
    }

    println!("\n== read-only throughput vs workers ==");
    for &w in &worker_sweep {
        let t = run_closed_loop(
            &index,
            w,
            clients,
            seconds,
            0.0,
            EditClass::TinyReach,
            &fresh_sources,
            1000 + w as u64,
        );
        println!(
            "workers {w}: {} reads in {:.2}s -> {:.0}/s, p50 {:.3}ms p99 {:.3}ms p999 {:.3}ms \
             (mean batch {:.2})",
            t.reads,
            t.elapsed,
            t.reads as f64 / t.elapsed,
            t.metrics.latency_p50_ms,
            t.metrics.latency_p99_ms,
            t.metrics.latency_p999_ms,
            t.metrics.mean_batch,
        );
    }

    println!("\n== mixed latency + freshness lag vs update rate (workers 1, tiny-reach edits) ==");
    fn report_mixed(label: &str, t: &TrialOut, baseline_p99: Option<f64>) {
        let vs_baseline = baseline_p99
            .map(|b| format!("{:.2}x read-only p99", t.metrics.latency_p99_ms / b.max(1e-9)))
            .unwrap_or_else(|| "baseline".into());
        println!(
            "{label}: {} reads ({:.0}/s), {} writes acked, p50 {:.3}ms p99 {:.3}ms \
             ({vs_baseline}), lag p50 {} max {} mean {:.3}, swaps {} (p50 {:.3}ms max {:.3}ms)",
            t.reads,
            t.reads as f64 / t.elapsed,
            t.writes_acked,
            t.metrics.latency_p50_ms,
            t.metrics.latency_p99_ms,
            t.metrics.freshness_lag_p50,
            t.metrics.freshness_lag_max,
            t.metrics.freshness_lag_mean,
            t.metrics.swaps,
            t.metrics.swap_p50_ms,
            t.metrics.swap_max_ms,
        );
    }
    let mut baseline_p99 = None;
    for &rate in &rates {
        let t = run_closed_loop(
            &index,
            1,
            clients,
            seconds,
            rate as f64,
            EditClass::TinyReach,
            &fresh_sources,
            2000 + rate as u64,
        );
        report_mixed(&format!("rate {rate}/s"), &t, baseline_p99);
        if rate == 0 {
            baseline_p99 = Some(t.metrics.latency_p99_ms);
        }
    }
    // The starvation worst case: uniform random edges can dirty most of
    // the index, so on one core a single apply monopolises the CPU for
    // seconds — readers stall not on any lock (there is none on the read
    // path) but on cycles.
    let heavy = run_closed_loop(
        &index,
        1,
        clients,
        seconds,
        5.0,
        EditClass::HeavyReach,
        &fresh_sources,
        2500,
    );
    report_mixed("rate 5/s HEAVY-reach", &heavy, baseline_p99);

    println!("\n== shed threshold sweep (workers 1, open-loop submitter) ==");
    for &q in &queues {
        let t = run_shed_sweep(&index, q, seconds.min(1.0), 3000 + q as u64);
        println!(
            "queue {q}: offered {} ({:.0}/s), completed {}, shed {} ({:.2}%), worst depth {}",
            t.metrics.submitted,
            t.metrics.submitted as f64 / t.elapsed,
            t.metrics.completed,
            t.metrics.shed,
            t.metrics.shed_rate() * 100.0,
            t.metrics.max_queue_depth,
        );
    }
}
