//! Criterion view of Figure 2: K-dash query latency per dataset and K.
//! The cross-engine comparison lives in `fig4_baseline_latency.rs` and the
//! `experiments fig2` subcommand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kdash_bench::{all_datasets, queries_for, HarnessConfig};
use kdash_core::{IndexOptions, KdashIndex};

fn bench(c: &mut Criterion) {
    let config = HarnessConfig { target_nodes: 800, queries: 8, seed: 42 };
    let mut group = c.benchmark_group("fig2_kdash_query");
    group.sample_size(20);
    for (profile, graph) in all_datasets(&config) {
        let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");
        let queries = queries_for(&graph, config.queries);
        for k in [5usize, 25, 50] {
            group.bench_with_input(
                BenchmarkId::new(profile.name(), k),
                &k,
                |b, &k| {
                    let mut i = 0;
                    b.iter(|| {
                        let q = queries[i % queries.len()];
                        i += 1;
                        std::hint::black_box(index.top_k(q, k).expect("query"))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
