//! Ablation (DESIGN.md #1): stored sparse inverses vs re-solving the
//! triangular systems per query. The paper stores `L⁻¹`/`U⁻¹`; the
//! alternative keeps only the factors and runs two Gilbert–Peierls solves
//! per query. Storing inverses should win at query time (at a memory
//! cost), especially when only a few proximities are needed.

use criterion::{criterion_group, criterion_main, Criterion};
use kdash_bench::{dataset, queries_for, HarnessConfig};
use kdash_core::{IndexOptions, KdashIndex};
use kdash_datagen::DatasetProfile;

fn bench(c: &mut Criterion) {
    let config = HarnessConfig { target_nodes: 800, queries: 8, seed: 42 };
    let graph = dataset(DatasetProfile::Dictionary, &config);
    let index = KdashIndex::build(
        &graph,
        IndexOptions { keep_factors: true, ..Default::default() },
    )
    .expect("index");
    let queries = queries_for(&graph, config.queries);

    let mut group = c.benchmark_group("ablation_solve_vs_inverse");
    group.sample_size(15);
    let mut i = 0usize;
    group.bench_function("stored_inverses_full_vector", |b| {
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(index.full_proximities(q).expect("query"))
        })
    });
    let mut j = 0usize;
    group.bench_function("per_query_triangular_solves", |b| {
        b.iter(|| {
            let q = queries[j % queries.len()];
            j += 1;
            std::hint::black_box(index.proximities_via_factors(q).expect("query"))
        })
    });
    let mut l = 0usize;
    group.bench_function("stored_inverses_top5_search", |b| {
        b.iter(|| {
            let q = queries[l % queries.len()];
            l += 1;
            std::hint::black_box(index.top_k(q, 5).expect("query"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
