//! Headline benchmark for the sparsified tier (PR 8): the
//! memory-vs-refinement-latency trade-off of drop-tolerance sparsified
//! inverses with certified residual refinement.
//!
//! For each drop tolerance ε in the sweep the bench builds a full index
//! (`IndexBuilder::drop_tolerance(ε)`, hybrid ordering) on the same
//! graph and reports:
//!
//! * **build cost** — total wall-clock and the inversion stage, the one
//!   truncation accelerates (a dropped entry never propagates, so the
//!   whole downstream fill subtree is pruned *during* the solve);
//! * **stored footprint** — inverse nnz and heap bytes, against the
//!   dense ε = 0 baseline of the same run (acceptance: some ε reaches a
//!   ≥4× byte reduction at scale 16 with the ranking still pinned);
//! * **query cost** — per-query latency over a fixed spread of roots,
//!   plus the refinement work (iterations, streamed correction nnz)
//!   that is the honest price of the smaller store;
//! * **exactness** — every certified result's positive-proximity prefix
//!   must carry the dense baseline's node sequence exactly (when ε = 0
//!   is in the sweep) and agree across ε values; the first
//!   `KDASH_SPARSIFY_TRUTH` queries are additionally checked against
//!   the iterative ground truth. Uncertifiable queries (adjacent
//!   proximities inside the same ulp) surface as `RefinementFailed` and
//!   are *counted*, not hidden.
//!
//! The graph is RMAT reweighted with deterministic splitmix64 per-edge
//! weights: the stock generators emit unit weights, under which
//! structurally twinned nodes have *exactly* equal proximities — an
//! order no exact method can certify and under which "the" dense
//! ranking is itself arbitrary. Hashed 53-bit weights make distinct-node
//! proximity collisions measure-zero while keeping the structure.
//!
//! Headline numbers land in `BENCH_PR8.json` at the repo root. Like
//! `index_build`, measurement is direct wall-clock: a dense build takes
//! minutes at scale, so criterion-style warm-up would multiply the cost
//! without sharpening anything.
//!
//! Environment knobs:
//!
//! * `KDASH_BENCH_SCALE`    — RMAT scale (default 14 ⇒ 16,384 nodes).
//! * `KDASH_SPARSIFY_EPS`   — comma-separated ε sweep (default
//!   `0,1e-6,1e-5,1e-4,1e-3`; omit `0` to skip the dense baseline —
//!   the scale-18 configuration, where the dense build is the wall the
//!   tier exists to avoid).
//! * `KDASH_QUERIES`        — query roots per series (default 20).
//! * `KDASH_SPARSIFY_K`     — top-k size (default 50).
//! * `KDASH_SPARSIFY_TRUTH` — queries cross-checked against the
//!   iterative definition (default 2; 0 disables).

use kdash_baselines::{IterativeRwr, TopKEngine};
use kdash_core::{GatherKernel, IndexBuilder, KdashError, NodeOrdering, Searcher, TopKResult};
use kdash_datagen::{rmat, RmatParams};
use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Rebuilds `graph` with deterministic splitmix64 per-edge weights (53
/// bits of granularity), breaking the exact proximity ties unit weights
/// give structurally twinned nodes. Same scheme as the tier-1
/// `sparsified_equivalence` suite.
fn break_ties(graph: &CsrGraph) -> CsrGraph {
    let n = graph.num_nodes();
    let mut b = GraphBuilder::new(n);
    let mix = |v: u64| {
        let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for v in 0..n as NodeId {
        for (t, _) in graph.out_edges(v) {
            let h = mix(((v as u64) << 32) | t as u64) >> 11;
            b.add_edge(v, t, 1.0 + h as f64 / (1u64 << 53) as f64);
        }
    }
    b.build().expect("reweighted graph is structurally unchanged")
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    if xs.is_empty() {
        return f64::NAN;
    }
    xs[xs.len() / 2]
}

/// Positive-proximity prefix of a result: the part of the ranking the
/// exactness contract binds. Past it both paths pad with arbitrary
/// zero-proximity filler in visit order.
fn positive_prefix(r: &TopKResult) -> Vec<NodeId> {
    r.items.iter().take_while(|i| i.proximity > 0.0).map(|i| i.node).collect()
}

struct Series {
    eps: f64,
    build_secs: f64,
    inversion_secs: f64,
    inverse_nnz: usize,
    heap_bytes: usize,
    dropped_mass: f64,
    median_query_secs: f64,
    worst_query_secs: f64,
    median_refine_iters: f64,
    median_refine_nnz: f64,
    certified: usize,
    uncertifiable: usize,
    results: Vec<Option<TopKResult>>,
}

fn main() {
    let scale = env_usize("KDASH_BENCH_SCALE", 14) as u32;
    let num_queries = env_usize("KDASH_QUERIES", 20);
    let k = env_usize("KDASH_SPARSIFY_K", 50);
    let truth_checks = env_usize("KDASH_SPARSIFY_TRUTH", 2);
    let eps_sweep: Vec<f64> = std::env::var("KDASH_SPARSIFY_EPS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<f64>| !v.is_empty())
        .unwrap_or_else(|| vec![0.0, 1e-6, 1e-5, 1e-4, 1e-3]);

    let n = 1usize << scale;
    let graph = break_ties(&rmat(scale, n * 4, RmatParams::default(), 42));
    println!(
        "sparsified_tier setup: rmat scale {scale} (splitmix64-reweighted): {} nodes, {} \
         edges; eps sweep {:?}, {num_queries} queries, k = {k}",
        graph.num_nodes(),
        graph.num_edges(),
        eps_sweep,
    );
    let queries = kdash_bench::queries_for(&graph, num_queries);

    let mut series: Vec<Series> = Vec::with_capacity(eps_sweep.len());
    for &eps in &eps_sweep {
        let t = Instant::now();
        let (index, report) = IndexBuilder::new()
            .ordering(NodeOrdering::Hybrid)
            .drop_tolerance(eps)
            .build_with_report(&graph)
            .expect("index build");
        let build_secs = t.elapsed().as_secs_f64();
        let stats = index.stats();
        let inversion_secs = report
            .stages
            .iter()
            .find(|s| s.stage.name() == "inversion")
            .map(|s| s.duration.as_secs_f64())
            .unwrap_or(f64::NAN);
        println!(
            "bench sparsified_tier/build eps {eps:e}: {build_secs:.2}s total (inversion \
             {inversion_secs:.2}s); inverse nnz {} (L⁻¹ {}, U⁻¹ {}), heap {} bytes, dropped \
             l1 mass {:.3e}, refinement {}",
            stats.nnz_l_inv + stats.nnz_u_inv,
            stats.nnz_l_inv,
            stats.nnz_u_inv,
            stats.inverse_heap_bytes,
            index.dropped_mass(),
            if index.needs_refinement() { "required" } else { "not required (classic path)" },
        );

        let mut searcher =
            Searcher::with_kernel(&index, GatherKernel::Adaptive).expect("adaptive kernel");
        // One warm-up query so the workspace allocations don't land in
        // the first measured trial.
        let _ = searcher.top_k(queries[0], k);
        let mut lats = Vec::with_capacity(queries.len());
        let mut iters = Vec::new();
        let mut rnnz = Vec::new();
        let mut results = Vec::with_capacity(queries.len());
        let mut uncertifiable = 0usize;
        for &q in &queries {
            let t = Instant::now();
            match searcher.top_k(q, k) {
                Ok(r) => {
                    lats.push(t.elapsed().as_secs_f64());
                    iters.push(r.stats.refinement_iterations as f64);
                    rnnz.push(r.stats.refinement_nnz as f64);
                    results.push(Some(r));
                }
                Err(KdashError::RefinementFailed { iterations, residual, gap }) => {
                    // The honest failure mode: adjacent proximities the
                    // residual bound cannot separate. Counted, never hidden.
                    uncertifiable += 1;
                    results.push(None);
                    println!(
                        "bench sparsified_tier/eps {eps:e} query {q}: UNCERTIFIABLE after \
                         {iterations} iterations (residual {residual:.3e}, gap {gap:.3e})"
                    );
                }
                Err(e) => panic!("query {q} failed structurally: {e}"),
            }
        }
        let certified = results.iter().filter(|r| r.is_some()).count();
        series.push(Series {
            eps,
            build_secs,
            inversion_secs,
            inverse_nnz: stats.nnz_l_inv + stats.nnz_u_inv,
            heap_bytes: stats.inverse_heap_bytes,
            dropped_mass: index.dropped_mass(),
            median_query_secs: median(&mut lats.clone()),
            worst_query_secs: lats.iter().copied().fold(f64::NAN, f64::max),
            median_refine_iters: median(&mut iters),
            median_refine_nnz: median(&mut rnnz),
            certified,
            uncertifiable,
            results,
        });
    }

    // Exactness: all certified results must agree on the
    // positive-proximity prefix, across every pair of series (the dense
    // ε = 0 series, when present, is just the strictest member).
    let mut mismatches = 0usize;
    for (qi, &q) in queries.iter().enumerate() {
        let mut reference: Option<(f64, Vec<NodeId>)> = None;
        for s in &series {
            let Some(r) = &s.results[qi] else { continue };
            let prefix = positive_prefix(r);
            match &reference {
                None => reference = Some((s.eps, prefix)),
                Some((ref_eps, ref_prefix)) => {
                    if *ref_prefix != prefix {
                        mismatches += 1;
                        println!(
                            "bench sparsified_tier/MISMATCH query {q}: eps {:e} and eps {:e} \
                             disagree on the certified ranking",
                            ref_eps, s.eps,
                        );
                    }
                }
            }
        }
    }
    assert_eq!(mismatches, 0, "certified rankings must agree across the eps sweep");

    // Ground-truth spot checks against the iterative definition.
    for &q in queries.iter().take(truth_checks) {
        let truth = IterativeRwr::new(&graph, 0.95).top_k(q, k);
        for s in &series {
            let Some(r) = &s.results[queries.iter().position(|&x| x == q).unwrap()] else {
                continue;
            };
            let ok = r
                .items
                .iter()
                .zip(&truth)
                .take_while(|(got, _)| got.proximity > 0.0)
                .all(|(got, want)| got.node == want.0 && (got.proximity - want.1).abs() < 1e-9);
            assert!(ok, "eps {:e} query {q} diverged from the iterative ground truth", s.eps);
        }
        println!("bench sparsified_tier/truth query {q}: all series match the iterative definition");
    }

    let dense = series.iter().find(|s| s.eps == 0.0);
    for s in &series {
        let (byte_ratio, build_ratio, lat_ratio) = match dense {
            Some(d) if s.eps != 0.0 => (
                format!("{:.2}x", d.heap_bytes as f64 / s.heap_bytes.max(1) as f64),
                format!("{:.2}x", d.build_secs / s.build_secs),
                format!("{:.2}x", s.median_query_secs / d.median_query_secs),
            ),
            _ => ("-".into(), "-".into(), "-".into()),
        };
        println!(
            "bench sparsified_tier/summary eps {:e}: build {:.2}s (inversion {:.2}s, {} vs \
             dense), store {} nnz / {} bytes ({} reduction), dropped mass {:.3e} | query \
             median {:.2}ms worst {:.2}ms ({} vs dense) | refinement median {:.1} iters / \
             {:.0} nnz | {}/{} certified, {} uncertifiable",
            s.eps,
            s.build_secs,
            s.inversion_secs,
            build_ratio,
            s.inverse_nnz,
            s.heap_bytes,
            byte_ratio,
            s.dropped_mass,
            1e3 * s.median_query_secs,
            1e3 * s.worst_query_secs,
            lat_ratio,
            s.median_refine_iters,
            s.median_refine_nnz,
            s.certified,
            s.certified + s.uncertifiable,
            s.uncertifiable,
        );
    }
    println!("sparsified_tier done: {} series, {} queries each", series.len(), queries.len());
}
