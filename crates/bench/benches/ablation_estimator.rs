//! Ablation: cost of one estimator update (Lemma 3 claims `O(1)`) versus
//! one exact proximity computation (a sparse row·column dot product).
//! The pruning only pays off because the bound is orders of magnitude
//! cheaper than the thing it skips.

use criterion::{criterion_group, criterion_main, Criterion};
use kdash_bench::{dataset, HarnessConfig};
use kdash_core::{IndexOptions, KdashIndex, LayerEstimator};
use kdash_datagen::DatasetProfile;
use kdash_sparse::{transition_matrix, DanglingPolicy};

fn bench(c: &mut Criterion) {
    let config = HarnessConfig { target_nodes: 800, queries: 4, seed: 42 };
    let graph = dataset(DatasetProfile::Dictionary, &config);
    let a = transition_matrix(&graph, DanglingPolicy::Keep);
    let a_max = a.global_max();
    let col_max = a.col_max();
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");
    let q = 0u32;
    let full = index.full_proximities(q).expect("full");

    let mut group = c.benchmark_group("ablation_estimator");
    // One full advance/record cycle per iteration (steady state: same layer).
    group.bench_function("estimator_advance_record", |b| {
        let mut est = LayerEstimator::new(a_max);
        est.record_root(full[q as usize], col_max[q as usize]);
        let mut i = 1usize;
        // Prime one layer-1 step so subsequent steps stay on one layer.
        let _ = est.advance(1);
        est.record_selected(1, 1e-6, col_max[1]);
        b.iter(|| {
            let term = est.advance(1);
            est.record_selected(1, 1e-9, col_max[i % col_max.len()]);
            i += 1;
            std::hint::black_box(term)
        })
    });
    // One exact proximity computation per iteration.
    group.bench_function("exact_proximity_single_node", |b| {
        let mut u = 0u32;
        let n = graph.num_nodes() as u32;
        b.iter(|| {
            u = (u + 1) % n;
            std::hint::black_box(index.proximity(q, u).expect("proximity"))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
