//! Micro-benchmarks of the substrate kernels: sparse LU, triangular
//! inversion, sparse triangular solve, matvec, Louvain, and the BFS —
//! the components whose costs compose into Figures 2 and 6.

use criterion::{criterion_group, criterion_main, Criterion};
use kdash_bench::{dataset, HarnessConfig};
use kdash_community::{louvain, LouvainOptions};
use kdash_core::{compute_ordering, NodeOrdering};
use kdash_datagen::DatasetProfile;
use kdash_graph::BfsTree;
use kdash_sparse::{
    invert_lower_unit, sparse_lu, transition_matrix, w_matrix, DanglingPolicy, SolveWorkspace,
    Triangle,
};

fn bench(c: &mut Criterion) {
    let config = HarnessConfig { target_nodes: 600, queries: 4, seed: 42 };
    let graph = dataset(DatasetProfile::Dictionary, &config);
    let perm = compute_ordering(&graph, NodeOrdering::Hybrid);
    let permuted = graph.permute(&perm).expect("permute");
    let a = transition_matrix(&permuted, DanglingPolicy::Keep);
    let w = w_matrix(&a, 0.95).expect("w");
    let factors = sparse_lu(&w).expect("lu");

    let mut group = c.benchmark_group("substrate");
    group.sample_size(10);
    group.bench_function("sparse_lu_hybrid_ordered", |b| {
        b.iter(|| std::hint::black_box(sparse_lu(&w).expect("lu")))
    });
    group.bench_function("invert_lower_unit", |b| {
        b.iter(|| std::hint::black_box(invert_lower_unit(&factors.l).expect("inv")))
    });
    group.bench_function("gilbert_peierls_unit_solve", |b| {
        let mut ws = SolveWorkspace::new(w.nrows());
        let (mut oi, mut ov) = (Vec::new(), Vec::new());
        let mut q = 0u32;
        b.iter(|| {
            q = (q + 1) % w.nrows() as u32;
            ws.solve_unit(&factors.l, Triangle::Lower, true, q, &mut oi, &mut ov).expect("solve");
            std::hint::black_box(oi.len())
        })
    });
    group.bench_function("csc_matvec", |b| {
        let x = vec![1.0 / a.ncols() as f64; a.ncols()];
        b.iter(|| std::hint::black_box(a.matvec(&x)))
    });
    group.bench_function("bfs_tree", |b| {
        let mut root = 0u32;
        b.iter(|| {
            root = (root + 7) % permuted.num_nodes() as u32;
            std::hint::black_box(BfsTree::new(&permuted, root).num_reachable())
        })
    });
    group.bench_function("louvain", |b| {
        b.iter(|| {
            std::hint::black_box(
                louvain(&graph, LouvainOptions::default()).num_communities(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
