//! PR 2 headline benchmark: the staged build pipeline.
//!
//! Times full `IndexBuilder` runs on an RMAT graph (the paper's Figure 6
//! workload shape), printing one line per pipeline stage — ordering /
//! factorization / inversion / estimator / assemble — for a configurable
//! list of inversion thread counts, then the sequential-vs-parallel
//! speedup. Headline numbers land in `BENCH_PR2.json` at the repo root.
//!
//! This bench measures each configuration **once** with direct wall-clock
//! timing instead of going through the criterion stand-in: a build takes
//! minutes at the default scale, and the harness's warm-up alone would
//! triple the cost without improving a measurement this macroscopic.
//!
//! Environment knobs:
//!
//! * `KDASH_BENCH_SCALE`   — RMAT scale (default 16 ⇒ 65,536 nodes).
//! * `KDASH_BUILD_THREADS` — comma-separated thread counts to measure
//!   (default `1,0`; `0` = one worker per available core).

use kdash_core::{BuildReport, IndexBuilder, NodeOrdering};
use kdash_datagen::{rmat, RmatParams};

fn stage_line(report: &BuildReport) -> String {
    report
        .stages
        .iter()
        .map(|t| format!("{} {:.3?}", t.stage.name(), t.duration))
        .collect::<Vec<_>>()
        .join(" | ")
}

fn main() {
    let scale: u32 = std::env::var("KDASH_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let threads_list: Vec<usize> = std::env::var("KDASH_BUILD_THREADS")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 0]);

    let n = 1usize << scale;
    let graph = rmat(scale, n * 4, RmatParams::default(), 42);
    println!(
        "index_build setup: rmat scale {scale}: {} nodes, {} edges; cores available: {}",
        graph.num_nodes(),
        graph.num_edges(),
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
    );

    let mut totals: Vec<(usize, usize, f64)> = Vec::new(); // (requested, resolved, seconds)
    for &threads in &threads_list {
        let builder = IndexBuilder::new().ordering(NodeOrdering::Hybrid).threads(threads);
        let (index, report) = builder.build_with_report(&graph).expect("index build");
        let total = report.total();
        println!(
            "bench index_build/threads_{threads}: {:.1?} total [{}] (resolved {} workers, \
             nnz L-inv {}, nnz U-inv {})",
            total,
            stage_line(&report),
            report.inversion_threads,
            index.stats().nnz_l_inv,
            index.stats().nnz_u_inv,
        );
        totals.push((threads, report.inversion_threads, total.as_secs_f64()));
    }

    if let (Some(seq), Some(par)) = (
        totals.iter().find(|&&(requested, _, _)| requested == 1),
        totals.iter().find(|&&(requested, _, _)| requested != 1),
    ) {
        println!(
            "bench index_build/speedup: {:.2}x end-to-end ({} workers vs sequential)",
            seq.2 / par.2,
            par.1,
        );
    }
}
