//! Durability benchmark for the write-ahead journal (PR 9): what the
//! fsync-before-ack tax costs per apply, what recovery costs as a
//! function of journal length, and what a checkpoint adds over a plain
//! atomic save.
//!
//! Three series, all on the same RMAT index:
//!
//! * **journal fsync tax** — the same single-edit batches stream through
//!   a plain engine and a journaled engine; per apply the bench reports
//!   the journaled total, the `journal_time` component (encode + append
//!   + fsync), and the tax as a fraction of the apply. The batches are
//!   in-degree-0-source inserts (the cheap, provably-tiny-reach class),
//!   so the tax is measured against the *fastest* applies — its
//!   worst-case fraction, not an average diluted by slow re-solves.
//! * **recovery vs journal length** — for each queue length J: snapshot
//!   at epoch 0, journal J acknowledged batches, "crash" (drop the
//!   engine), then `DynamicIndex::recover`. Reported: full recovery
//!   wall time (snapshot load excluded, attach + replay included), the
//!   replay component, and the live-apply wall time the same batches
//!   cost before the crash — replay is one coalesced pass, so it is
//!   expected to *beat* the live sequential cost at larger J.
//! * **checkpoint vs plain save** — `checkpoint()` (atomic save + fsync
//!   + journal truncation through a rename) against `save_atomic` alone;
//!   the difference is the price of resetting the journal.
//!
//! Like the other update benches this measures direct wall-clock time
//! (no criterion warm-up: each trial mutates durable state).
//!
//! Environment knobs:
//!
//! * `KDASH_BENCH_SCALE`      — RMAT scale (default 12 ⇒ 4,096 nodes).
//! * `KDASH_RECOVERY_TRIALS`  — trials per series (default 5).
//! * `KDASH_RECOVERY_QUEUES`  — comma-separated journal lengths for the
//!   recovery series (default `1,4,16,64`).
//! * `KDASH_RECOVERY_THREADS` — re-solve workers (default 1).
//!
//! Headline numbers land in `BENCH_PR9.json` at the repo root.

use kdash_core::{save_atomic, IndexBuilder, KdashIndex};
use kdash_datagen::{rmat, RmatParams};
use kdash_dynamic::{DynamicIndex, Journal, UpdateBatch};
use kdash_graph::{CsrGraph, EdgeEdit, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    if xs.is_empty() {
        return 0.0;
    }
    xs[xs.len() / 2]
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Single-edge insert batches from in-degree-0 sources: the cheap
/// tiny-reach class, so per-apply times are dominated by the constant
/// per-pass costs and the journal tax shows at its *largest* fraction.
fn fresh_source_batches(graph: &CsrGraph, count: usize, seed: u64) -> Vec<UpdateBatch> {
    let n = graph.num_nodes();
    let mut in_degree = vec![0usize; n];
    let mut edge_set: HashSet<(NodeId, NodeId)> = HashSet::new();
    for (s, d, _) in graph.edges() {
        in_degree[d as usize] += 1;
        edge_set.insert((s, d));
    }
    let sources: Vec<NodeId> =
        (0..n as NodeId).filter(|&v| in_degree[v as usize] == 0).collect();
    assert!(
        !sources.is_empty(),
        "RMAT at this scale always leaves in-degree-0 nodes; found none"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batches = Vec::with_capacity(count);
    let mut i = 0usize;
    while batches.len() < count {
        let src = sources[i % sources.len()];
        i += 1;
        let dst = rng.gen_range(0..n as NodeId);
        if src == dst || edge_set.contains(&(src, dst)) {
            continue;
        }
        edge_set.insert((src, dst));
        batches.push(
            UpdateBatch::new(vec![EdgeEdit::Insert {
                src,
                dst,
                weight: rng.gen_range(0.5..2.0),
            }])
            .expect("generated edit is valid"),
        );
    }
    batches
}

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kdash-recovery-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench temp dir");
    dir
}

/// Journal fsync tax: identical batches through a plain and a journaled
/// engine; the per-apply delta and the measured `journal_time` bracket
/// the durability cost.
fn series_fsync_tax(
    index: &KdashIndex,
    batches: &[UpdateBatch],
    threads: usize,
    dir: &Path,
) {
    println!("\n== series: journal fsync tax (per-ack append+fsync) ==");
    let snapshot = dir.join("tax.kdash");
    save_atomic(index, &snapshot).expect("save");
    let journal =
        Journal::create(Journal::sidecar_path(&snapshot), index.update_epoch()).expect("journal");
    let mut plain = DynamicIndex::new(index.clone()).expect("attach").threads(threads);
    let mut journaled = DynamicIndex::new(index.clone())
        .expect("attach")
        .journaled(journal)
        .expect("journaled")
        .threads(threads);

    let (mut t_plain, mut t_journaled, mut t_tax) = (Vec::new(), Vec::new(), Vec::new());
    for (i, batch) in batches.iter().enumerate() {
        let t = Instant::now();
        plain.apply(batch).expect("plain apply");
        let plain_s = secs(t.elapsed());
        let t = Instant::now();
        let report = journaled.apply(batch).expect("journaled apply");
        let journaled_s = secs(t.elapsed());
        let tax_s = secs(report.journal_time);
        println!(
            "apply {:<3} plain {:>9.2?} journaled {:>9.2?} journal component {:>9.2?} \
             ({:.1}% of the journaled apply)",
            i + 1,
            Duration::from_secs_f64(plain_s),
            Duration::from_secs_f64(journaled_s),
            report.journal_time,
            100.0 * tax_s / journaled_s.max(1e-12),
        );
        t_plain.push(plain_s);
        t_journaled.push(journaled_s);
        t_tax.push(tax_s);
    }
    let (mp, mj, mt) = (median(&mut t_plain), median(&mut t_journaled), median(&mut t_tax));
    println!(
        "medians: plain {mp:.6}s, journaled {mj:.6}s, journal component {mt:.6}s \
         ({:.1}% of the journaled apply; journaled/plain = {:.3}x)",
        100.0 * mt / mj.max(1e-12),
        mj / mp.max(1e-12),
    );
}

/// Recovery wall time as a function of journal length, vs the live
/// sequential apply cost of the same acknowledged batches.
fn series_recovery(
    index: &KdashIndex,
    graph: &CsrGraph,
    queues: &[usize],
    trials: usize,
    threads: usize,
    dir: &Path,
) {
    println!("\n== series: recovery vs journal length ==");
    for &len in queues {
        let (mut live, mut recover, mut replay) = (Vec::new(), Vec::new(), Vec::new());
        for trial in 0..trials {
            let case = dir.join(format!("recover-{len}-{trial}"));
            std::fs::create_dir_all(&case).expect("case dir");
            let snapshot = case.join("r.kdash");
            save_atomic(index, &snapshot).expect("save");
            let journal = Journal::create(Journal::sidecar_path(&snapshot), index.update_epoch())
                .expect("journal");
            let mut engine = DynamicIndex::new(index.clone())
                .expect("attach")
                .journaled(journal)
                .expect("journaled")
                .threads(threads);
            let batches = fresh_source_batches(graph, len, 1000 + trial as u64);
            let t = Instant::now();
            for batch in &batches {
                engine.apply(batch).expect("live apply");
            }
            let live_s = secs(t.elapsed());
            drop(engine); // crash: acked epochs live only in the journal

            let loaded = KdashIndex::load(std::io::BufReader::new(
                std::fs::File::open(&snapshot).expect("snapshot"),
            ))
            .expect("load");
            let t = Instant::now();
            let (recovered, report) =
                DynamicIndex::recover(loaded, Journal::sidecar_path(&snapshot))
                    .expect("recover");
            let recover_s = secs(t.elapsed());
            assert_eq!(recovered.index().update_epoch(), len as u64);
            live.push(live_s);
            recover.push(recover_s);
            replay.push(secs(report.replay_time));
            let _ = std::fs::remove_dir_all(&case);
        }
        println!(
            "journal length {len:>3}: live apply median {:.4}s, recovery median {:.4}s \
             (replay component {:.4}s; recovery/live = {:.3}x)",
            median(&mut live),
            median(&mut recover),
            median(&mut replay),
            {
                let (mut r, mut l) = (recover.clone(), live.clone());
                median(&mut r) / median(&mut l).max(1e-12)
            },
        );
    }
}

/// Checkpoint (atomic save + journal truncation) vs plain atomic save.
fn series_checkpoint(
    index: &KdashIndex,
    graph: &CsrGraph,
    trials: usize,
    threads: usize,
    dir: &Path,
) {
    println!("\n== series: checkpoint vs plain save_atomic ==");
    let (mut plain, mut checkpointed, mut truncation) = (Vec::new(), Vec::new(), Vec::new());
    for trial in 0..trials {
        let snapshot = dir.join(format!("ckpt-{trial}.kdash"));
        let t = Instant::now();
        save_atomic(index, &snapshot).expect("save");
        plain.push(secs(t.elapsed()));

        let journal = Journal::create(Journal::sidecar_path(&snapshot), index.update_epoch())
            .expect("journal");
        let mut engine = DynamicIndex::new(index.clone())
            .expect("attach")
            .journaled(journal)
            .expect("journaled")
            .threads(threads);
        let batches = fresh_source_batches(graph, 2, 2000 + trial as u64);
        for batch in &batches {
            engine.apply(batch).expect("apply");
        }
        let t = Instant::now();
        engine.checkpoint(&snapshot).expect("checkpoint");
        checkpointed.push(secs(t.elapsed()));

        // The truncation alone (header rewrite via tmp + fsync + rename),
        // isolated from the snapshot save's fsync variance.
        let mut lone =
            Journal::create(dir.join(format!("ckpt-{trial}.lone.journal")), 0).expect("journal");
        let t = Instant::now();
        lone.checkpoint(0).expect("truncate");
        truncation.push(secs(t.elapsed()));
    }
    // The checkpoint ≈ save + truncation; the gap between the first two
    // medians is dominated by save_atomic's own fsync run-to-run
    // variance, which is why the truncation is also measured alone.
    println!(
        "medians: save_atomic {:.4}s, checkpoint {:.4}s, journal truncation alone {:.4}s",
        median(&mut plain),
        median(&mut checkpointed),
        median(&mut truncation),
    );
}

fn main() {
    let scale = env_usize("KDASH_BENCH_SCALE", 12) as u32;
    let trials = env_usize("KDASH_RECOVERY_TRIALS", 5);
    let queues = env_list("KDASH_RECOVERY_QUEUES", &[1, 4, 16, 64]);
    let threads = env_usize("KDASH_RECOVERY_THREADS", 1);

    let graph = rmat(scale, (1usize << scale) * 4, RmatParams::default(), 42);
    println!(
        "RMAT scale {scale}: {} nodes, {} edges; {trials} trial(s), queues {queues:?}, \
         {threads} re-solve worker(s)",
        graph.num_nodes(),
        graph.num_edges()
    );
    let t = Instant::now();
    let index = IndexBuilder::new().threads(0).build(&graph).expect("build");
    println!("index built in {:.2?}", t.elapsed());
    let dir = bench_dir();

    let tax_batches = fresh_source_batches(&graph, trials.max(3), 7);
    series_fsync_tax(&index, &tax_batches, threads, &dir);
    series_recovery(&index, &graph, &queues, trials, threads, &dir);
    series_checkpoint(&index, &graph, trials, threads, &dir);

    let _ = std::fs::remove_dir_all(&dir);
}
