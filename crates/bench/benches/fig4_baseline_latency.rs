//! Criterion view of Figures 2/4: per-query latency of every engine on the
//! Dictionary stand-in. The paper's headline — K-dash orders of magnitude
//! below the approximations — shows up directly in these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use kdash_baselines::{Bpa, BpaOptions, IterativeRwr, NbLin, NbLinOptions, TopKEngine};
use kdash_bench::{dataset, queries_for, HarnessConfig};
use kdash_core::{IndexOptions, KdashIndex};
use kdash_datagen::DatasetProfile;

fn bench(c: &mut Criterion) {
    let config = HarnessConfig { target_nodes: 800, queries: 8, seed: 42 };
    let graph = dataset(DatasetProfile::Dictionary, &config);
    let n = graph.num_nodes();
    let queries = queries_for(&graph, config.queries);
    let k = 5usize;

    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");
    let nblin = NbLin::build(
        &graph,
        NbLinOptions {
            target_rank: config.scaled_rank(1000, n),
            restart_probability: 0.95,
            seed: config.seed,
        },
    )
    .expect("nblin");
    let bpa = Bpa::build(
        &graph,
        BpaOptions {
            num_hubs: config.scaled_hubs(1000, n),
            restart_probability: 0.95,
            ..Default::default()
        },
    );
    let iterative = IterativeRwr::new(&graph, 0.95);

    let mut group = c.benchmark_group("fig4_engines");
    group.sample_size(15);
    let mut i = 0usize;
    group.bench_function("kdash", |b| {
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(index.top_k(q, k).expect("query"))
        })
    });
    group.bench_function("nblin", |b| {
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(nblin.top_k(q, k))
        })
    });
    group.bench_function("bpa", |b| {
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(bpa.top_k(q, k))
        })
    });
    group.bench_function("iterative", |b| {
        b.iter(|| {
            let q = queries[i % queries.len()];
            i += 1;
            std::hint::black_box(iterative.top_k(q, k))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
