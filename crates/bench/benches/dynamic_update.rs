//! Headline benchmark for dynamic updates: reach-bounded incremental
//! updates vs full rebuild (PR 5), now with the incremental-LU series
//! (PR 7).
//!
//! Builds an RMAT index once (the full-rebuild baseline, per-stage
//! timings included), attaches the `kdash-dynamic` engine, then streams
//! random edit batches through it — single edges first (the acceptance
//! series: the reach-bounded update must be ≥10× faster than a full
//! rebuild at scale 14), then growing batch sizes. Every trial prints
//! the measured dirty-column fractions (the quantity that explains the
//! speedup: the Gilbert–Peierls reach of a random edit touches a few
//! percent of the inverse columns, but a hub edit can touch most of
//! `L⁻¹` — medians and worst cases are both reported honestly).
//!
//! Two series were added for the incremental refactorisation work:
//!
//! * **incremental vs full LU** — every trial now reports the
//!   refactor/splice subdivision of the factorisation stage and the
//!   fraction of factor columns actually re-eliminated. Each series
//!   summary reconstructs what the same update cost on the *previous*
//!   engine (which re-ran a full `sparse_lu` per apply) by swapping the
//!   measured incremental stage for the full-LU stage time of the
//!   baseline build: `pr6_estimate = total − factorize_incremental +
//!   factorize_full`. Both inputs are direct measurements on this run's
//!   machine, not recorded constants.
//! * **coalesced queues** — for each size in `KDASH_UPDATE_COALESCE`, a
//!   queue of that many single-edit batches goes through
//!   `apply_coalesced` (one refactorisation, one reach analysis, one
//!   re-solve for the whole queue) and the per-edit amortised cost is
//!   compared against the sequential single-edit median.
//!
//! Headline numbers land in `BENCH_PR5.json` / `BENCH_PR7.json` at the
//! repo root.
//!
//! Like `index_build`, this bench measures with direct wall-clock timing:
//! a rebuild takes minutes at scale, so criterion-style warm-up would
//! multiply the cost without sharpening anything.
//!
//! Environment knobs:
//!
//! * `KDASH_BENCH_SCALE`     — RMAT scale (default 14 ⇒ 16,384 nodes).
//! * `KDASH_UPDATE_TRIALS`   — trials per batch size (default 9).
//! * `KDASH_UPDATE_BATCHES`  — comma-separated batch sizes (default
//!   `1,8,64`).
//! * `KDASH_UPDATE_THREADS`  — re-solve workers (default 1; 0 = cores).
//! * `KDASH_UPDATE_OPS`      — edit mix: `mixed` (default; uniform
//!   insert + edge-sampled delete/reweight), `reweight` (edge-sampled
//!   reweights only — the degree-biased churn a live edge stream
//!   delivers), `insert` (uniform-endpoint inserts only — the
//!   adversarial class whose factor cascade runs through the giant
//!   component), `tailchurn` (single edits sourced at nodes in the
//!   last 5 % of the elimination order — hub-side churn), or
//!   `freshsource` (single-edge inserts from **in-degree-0 sources** —
//!   the new-entity onboarding class: a node nothing reaches has a
//!   near-empty closure row, so the Gilbert–Peierls reach of its edits
//!   is provably tiny and the update runs orders of magnitude faster
//!   than a rebuild).
//! * `KDASH_UPDATE_COALESCE` — comma-separated coalesced queue lengths
//!   (default `1,4,16,64`; empty string or `0` disables the series).
//!   Each queue holds that many single-edit batches of the same `ops`
//!   class and is applied with `apply_coalesced`. Coalesced trials are
//!   capped at 5 per length to keep default runtime bounded.
//! * `KDASH_UPDATE_GRAPH`    — `rmat` (default) or a dataset profile
//!   (`citation`, `dictionary`, `internet`, `social`, `email`) scaled
//!   to `2^scale` nodes. RMAT's giant strongly-connected component is
//!   the adversarial regime for exact updates (the transitive closure
//!   of a random edit covers ~half the inverse); the citation profile's
//!   shallow reachability is the regime dynamic serving actually
//!   targets.

use kdash_core::{IndexBuilder, NodeOrdering};
use kdash_datagen::{rmat, DatasetProfile, RmatParams};
use kdash_dynamic::{DynamicIndex, UpdateBatch, UpdateReport};
use kdash_graph::{EdgeEdit, NodeId};
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One random valid batch against the evolving edge set. `ops` selects
/// the edit class: `mixed` draws uniformly from inserts (fresh uniform
/// pairs), deletes and reweights (edge-sampled, hence degree-biased like
/// a live churn stream); `reweight`/`insert` isolate one class.
fn random_batch(
    n: NodeId,
    edges: &mut Vec<(NodeId, NodeId)>,
    edge_set: &mut HashSet<(NodeId, NodeId)>,
    size: usize,
    ops: &str,
    tail_sources: &[NodeId],
    rng: &mut StdRng,
) -> UpdateBatch {
    let mut edits = Vec::with_capacity(size);
    while edits.len() < size {
        if ops == "freshsource" {
            // New-entity onboarding: an in-degree-0 source gains an
            // out-edge (tail_sources holds the in-degree-0 pool here).
            let src = *tail_sources.choose(rng).expect("non-empty source pool");
            let dst = rng.gen_range(0..n);
            if edge_set.insert((src, dst)) {
                edges.push((src, dst));
                edits.push(EdgeEdit::Insert { src, dst, weight: rng.gen_range(0.1..2.0) });
            }
            continue;
        }
        if ops == "tailchurn" {
            // Insert or reweight out-edges of late-elimination-order
            // sources only.
            let src = *tail_sources.choose(rng).expect("non-empty source pool");
            let dst = rng.gen_range(0..n);
            if edge_set.contains(&(src, dst)) {
                edits.push(EdgeEdit::Reweight { src, dst, weight: rng.gen_range(0.1..2.0) });
            } else {
                edge_set.insert((src, dst));
                edges.push((src, dst));
                edits.push(EdgeEdit::Insert { src, dst, weight: rng.gen_range(0.1..2.0) });
            }
            continue;
        }
        let op = match ops {
            "reweight" => 2,
            "insert" => 0,
            _ => rng.gen_range(0..3u32),
        };
        match op {
            0 => {
                let (src, dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if edge_set.insert((src, dst)) {
                    edges.push((src, dst));
                    edits.push(EdgeEdit::Insert { src, dst, weight: rng.gen_range(0.1..2.0) });
                }
            }
            1 if !edges.is_empty() => {
                let at = rng.gen_range(0..edges.len());
                let (src, dst) = edges.swap_remove(at);
                edge_set.remove(&(src, dst));
                edits.push(EdgeEdit::Delete { src, dst });
            }
            _ if !edges.is_empty() => {
                let &(src, dst) = edges.choose(rng).expect("non-empty edge list");
                edits.push(EdgeEdit::Reweight { src, dst, weight: rng.gen_range(0.1..2.0) });
            }
            _ => {}
        }
    }
    UpdateBatch::new(edits).expect("generator emits valid weights")
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    if xs.is_empty() {
        return f64::NAN;
    }
    xs[xs.len() / 2]
}

fn report_line(label: &str, r: &UpdateReport, secs: f64) {
    println!(
        "bench dynamic_update/{label}: {:.4}s total (graph {:.4}s, factorize {:.4}s [refactor \
         {:.4}s, splice {:.4}s], reach {:.4}s, re-solve {:.4}s, splice {:.4}s, estimator \
         {:.4}s) | dirty W {} | recomputed factor cols {} ({:.3}%) → changed L/U {}/{} | reach \
         L⁻¹ {} ({:.3}%) U⁻¹ {} ({:.3}%) | rows re-encoded {} | nnz re-solved {}",
        secs,
        r.graph_time.as_secs_f64(),
        r.factorization_time.as_secs_f64(),
        r.refactor_time.as_secs_f64(),
        r.factor_splice_time.as_secs_f64(),
        r.reach_time.as_secs_f64(),
        r.resolve_time.as_secs_f64(),
        r.splice_time.as_secs_f64(),
        r.estimator_time.as_secs_f64(),
        r.dirty_w_columns,
        r.dirty_factor_columns_recomputed,
        100.0 * r.factor_recompute_fraction(),
        r.dirty_l_columns,
        r.dirty_u_columns,
        r.dirty_linv_columns,
        100.0 * r.linv_dirty_fraction(),
        r.dirty_uinv_columns,
        100.0 * r.uinv_dirty_fraction(),
        r.dirty_uinv_rows,
        r.resolved_nnz,
    );
}

fn main() {
    let scale = env_usize("KDASH_BENCH_SCALE", 14) as u32;
    let trials = env_usize("KDASH_UPDATE_TRIALS", 9);
    let threads = env_usize("KDASH_UPDATE_THREADS", 1);
    let batch_sizes: Vec<usize> = std::env::var("KDASH_UPDATE_BATCHES")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 8, 64]);
    let coalesce_sizes: Vec<usize> = std::env::var("KDASH_UPDATE_COALESCE")
        .ok()
        .map(|v| v.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1, 4, 16, 64]);
    let coalesce_sizes: Vec<usize> = coalesce_sizes.into_iter().filter(|&k| k > 0).collect();
    let ops = std::env::var("KDASH_UPDATE_OPS").unwrap_or_else(|_| "mixed".into());

    let family = std::env::var("KDASH_UPDATE_GRAPH").unwrap_or_else(|_| "rmat".into());
    let n = 1usize << scale;
    let graph = match family.as_str() {
        "rmat" => rmat(scale, n * 4, RmatParams::default(), 42),
        profile_name => {
            let profile = match profile_name {
                "dictionary" => DatasetProfile::Dictionary,
                "internet" => DatasetProfile::Internet,
                "citation" => DatasetProfile::Citation,
                "social" => DatasetProfile::Social,
                "email" => DatasetProfile::Email,
                other => panic!("unknown KDASH_UPDATE_GRAPH '{other}'"),
            };
            profile.generate(profile.scale_for_nodes(n), 42)
        }
    };
    println!(
        "dynamic_update setup: {family} scale {scale}: {} nodes, {} edges; re-solve threads {}",
        graph.num_nodes(),
        graph.num_edges(),
        threads,
    );

    // Full-rebuild baseline: what serving a fresh graph costs today.
    let t = Instant::now();
    let (index, report) = IndexBuilder::new()
        .ordering(NodeOrdering::Hybrid)
        .build_with_report(&graph)
        .expect("index build");
    let rebuild_secs = t.elapsed().as_secs_f64();
    println!(
        "bench dynamic_update/full_rebuild: {:.2}s total ({}); nnz L⁻¹ {}, U⁻¹ {}",
        rebuild_secs,
        report
            .stages
            .iter()
            .map(|s| format!("{} {:.2}s", s.stage.name(), s.duration.as_secs_f64()))
            .collect::<Vec<_>>()
            .join(", "),
        index.stats().nnz_l_inv,
        index.stats().nnz_u_inv,
    );

    // The full-LU stage of the baseline build is exactly what the
    // previous engine re-ran on every apply; keeping it lets each series
    // reconstruct the pre-incremental ("PR 6 path") update cost from
    // measurements taken on this same machine and graph.
    let full_factor_stage_secs = report
        .stages
        .iter()
        .find(|s| s.stage.name() == "factorization")
        .map(|s| s.duration.as_secs_f64())
        .unwrap_or(f64::NAN);

    let t = Instant::now();
    let mut dynamic = DynamicIndex::new(index).expect("attach engine").threads(threads);
    println!("bench dynamic_update/attach: {:.3}s (one-off refactorisation)", t.elapsed().as_secs_f64());

    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    let mut edge_set: HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let mut rng = StdRng::seed_from_u64(7);

    // The source pool for the class-restricted series: `tailchurn` draws
    // from the last 5 % of the elimination order; `freshsource` from the
    // in-degree-0 nodes (new entities nothing reaches yet).
    let tail_sources: Vec<NodeId> = match ops.as_str() {
        "freshsource" => {
            let in_deg = graph.transpose();
            (0..n as NodeId).filter(|&v| in_deg.out_degree(v) == 0).collect()
        }
        _ => {
            let perm = dynamic.index().permutation();
            let tail_start = n - (n / 20).max(1);
            (0..n as NodeId).filter(|&v| (perm.new_of(v) as usize) >= tail_start).collect()
        }
    };
    assert!(!tail_sources.is_empty(), "no sources available for ops class '{ops}'");

    let mut single_edit_median = f64::NAN;
    for &size in &batch_sizes {
        let mut totals: Vec<f64> = Vec::with_capacity(trials);
        let mut pr6_totals: Vec<f64> = Vec::with_capacity(trials);
        let mut factor_fracs: Vec<f64> = Vec::with_capacity(trials);
        let mut linv_fracs: Vec<f64> = Vec::with_capacity(trials);
        let mut uinv_fracs: Vec<f64> = Vec::with_capacity(trials);
        for trial in 0..trials {
            let batch = random_batch(
                n as NodeId,
                &mut edges,
                &mut edge_set,
                size,
                &ops,
                &tail_sources,
                &mut rng,
            );
            let t = Instant::now();
            let r = dynamic.apply(&batch).expect("apply batch");
            let secs = t.elapsed().as_secs_f64();
            report_line(&format!("{ops}{size}/trial{trial}"), &r, secs);
            totals.push(secs);
            pr6_totals.push(secs - r.factorization_time.as_secs_f64() + full_factor_stage_secs);
            factor_fracs.push(r.factor_recompute_fraction());
            linv_fracs.push(r.linv_dirty_fraction());
            uinv_fracs.push(r.uinv_dirty_fraction());
        }
        let best = totals.iter().copied().fold(f64::NAN, f64::min);
        let worst = totals.iter().copied().fold(f64::NAN, f64::max);
        let med = median(&mut totals);
        let pr6_med = median(&mut pr6_totals);
        if size == 1 {
            single_edit_median = med;
        }
        println!(
            "bench dynamic_update/{ops}{size}: median {:.4}s, best {:.4}s, worst {:.4}s over \
             {trials} trials | median recomputed factor cols {:.3}% | median dirty fraction \
             L⁻¹ {:.3}% U⁻¹ {:.3}% | speedup vs rebuild: median {:.1}x, best {:.1}x, worst \
             {:.1}x | full-LU path estimate {:.4}s → incremental-LU speedup {:.2}x",
            med,
            best,
            worst,
            100.0 * median(&mut factor_fracs),
            100.0 * median(&mut linv_fracs),
            100.0 * median(&mut uinv_fracs),
            rebuild_secs / med,
            rebuild_secs / best,
            rebuild_secs / worst,
            pr6_med,
            pr6_med / med,
        );
    }

    // Coalesced-queue series: k single-edit batches merged into one
    // incremental pass. The sequential reference is the measured
    // single-edit median times k (NaN if the size-1 series did not run).
    for &k in &coalesce_sizes {
        let ctrials = trials.min(5).max(1);
        let mut totals: Vec<f64> = Vec::with_capacity(ctrials);
        let mut factor_fracs: Vec<f64> = Vec::with_capacity(ctrials);
        for trial in 0..ctrials {
            let queue: Vec<UpdateBatch> = (0..k)
                .map(|_| {
                    random_batch(
                        n as NodeId,
                        &mut edges,
                        &mut edge_set,
                        1,
                        &ops,
                        &tail_sources,
                        &mut rng,
                    )
                })
                .collect();
            let t = Instant::now();
            let r = dynamic.apply_coalesced(&queue).expect("apply coalesced queue");
            let secs = t.elapsed().as_secs_f64();
            report_line(&format!("{ops}-coalesce{k}/trial{trial}"), &r, secs);
            totals.push(secs);
            factor_fracs.push(r.factor_recompute_fraction());
        }
        let med = median(&mut totals);
        println!(
            "bench dynamic_update/{ops}-coalesce{k}: median {:.4}s for the queue ({:.4}s per \
             edit) over {ctrials} trials | median recomputed factor cols {:.3}% | sequential \
             estimate {:.4}s → coalescing gain {:.2}x",
            med,
            med / k as f64,
            100.0 * median(&mut factor_fracs),
            single_edit_median * k as f64,
            single_edit_median * k as f64 / med,
        );
    }
    println!(
        "dynamic_update done: index now at update epoch {} with {} edges",
        dynamic.index().update_epoch(),
        dynamic.index().stats().num_edges,
    );
}
