//! # kdash-bench
//!
//! Shared plumbing for the experiment harness (`experiments` binary) and
//! the Criterion micro-benchmarks: dataset instantiation at a common
//! scale, engine construction, and parameter scaling rules.
//!
//! ## Scaling rule
//!
//! The paper's datasets range from 13 k to 265 k nodes; the harness
//! regenerates every figure on synthetic stand-ins scaled to
//! `KDASH_NODES` nodes (default 1500) so the full suite runs in minutes.
//! NB_LIN's target rank and BPA's hub count are scaled by the *same
//! fraction of n* the paper used (rank 100 and 1000 on the 13 356-node
//! Dictionary are 0.75% and 7.5% of n), keeping the trade-off curves
//! comparable in shape.

use kdash_datagen::DatasetProfile;
use kdash_graph::{CsrGraph, NodeId};

/// Harness-wide configuration pulled from the environment.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Approximate node count per dataset (`KDASH_NODES`, default 1500).
    pub target_nodes: usize,
    /// Queries per measurement (`KDASH_QUERIES`, default 20).
    pub queries: usize,
    /// Base RNG seed (`KDASH_SEED`, default 42).
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig { target_nodes: 1500, queries: 20, seed: 42 }
    }
}

impl HarnessConfig {
    /// Reads `KDASH_NODES`, `KDASH_QUERIES` and `KDASH_SEED` from the
    /// environment, falling back to the defaults.
    pub fn from_env() -> Self {
        let read = |key: &str, default: usize| {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        };
        HarnessConfig {
            target_nodes: read("KDASH_NODES", 1500),
            queries: read("KDASH_QUERIES", 20),
            seed: read("KDASH_SEED", 42) as u64,
        }
    }

    /// NB_LIN target rank corresponding to the paper's rank `paper_rank`
    /// on the 13 356-node Dictionary, rescaled to `n` nodes.
    pub fn scaled_rank(&self, paper_rank: usize, n: usize) -> usize {
        let fraction = paper_rank as f64 / 13_356.0;
        ((fraction * n as f64).round() as usize).clamp(4, n.saturating_sub(1).max(4))
    }

    /// BPA hub count under the same rescaling.
    pub fn scaled_hubs(&self, paper_hubs: usize, n: usize) -> usize {
        self.scaled_rank(paper_hubs, n)
    }
}

/// Instantiates one dataset profile at the harness scale.
pub fn dataset(profile: DatasetProfile, config: &HarnessConfig) -> CsrGraph {
    profile.generate(profile.scale_for_nodes(config.target_nodes), config.seed)
}

/// All five paper datasets, in presentation order.
pub fn all_datasets(config: &HarnessConfig) -> Vec<(DatasetProfile, CsrGraph)> {
    DatasetProfile::ALL.iter().map(|&p| (p, dataset(p, config))).collect()
}

/// Deterministically spreads `count` query nodes (with out-edges) over the
/// id space.
pub fn queries_for(graph: &CsrGraph, count: usize) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut queries = Vec::with_capacity(count);
    let stride = (n / count.max(1)).max(1);
    let mut v = 0usize;
    while queries.len() < count && v < 2 * n {
        let candidate = (v % n) as NodeId;
        if graph.out_degree(candidate) > 0 && !queries.contains(&candidate) {
            queries.push(candidate);
        }
        v += stride;
    }
    if queries.is_empty() {
        queries.push(0);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let c = HarnessConfig::default();
        assert_eq!(c.target_nodes, 1500);
        assert_eq!(c.queries, 20);
    }

    #[test]
    fn rank_scaling_matches_paper_fractions() {
        let c = HarnessConfig::default();
        // rank 100 on 13356 nodes ≈ 0.75% -> on 1500 nodes ≈ 11.
        let r = c.scaled_rank(100, 1500);
        assert!((10..=13).contains(&r), "{r}");
        // rank 1000 ≈ 7.5% -> ≈ 112.
        let r = c.scaled_rank(1000, 1500);
        assert!((105..=120).contains(&r), "{r}");
        // Clamped to sane bounds.
        assert!(c.scaled_rank(1, 10_000) >= 4);
        assert!(c.scaled_rank(100_000, 50) < 50);
    }

    #[test]
    fn datasets_generate_at_scale() {
        let config = HarnessConfig { target_nodes: 400, queries: 5, seed: 1 };
        for (profile, graph) in all_datasets(&config) {
            assert!(graph.num_nodes() >= 300, "{profile}: {}", graph.num_nodes());
            assert!(graph.num_edges() > 0, "{profile}");
        }
    }

    #[test]
    fn queries_are_usable() {
        let config = HarnessConfig { target_nodes: 400, queries: 8, seed: 2 };
        let g = dataset(DatasetProfile::Email, &config);
        for q in queries_for(&g, config.queries) {
            assert!(g.out_degree(q) > 0);
        }
    }
}
