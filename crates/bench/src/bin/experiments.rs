//! Regenerates every table and figure of the paper's evaluation (§6 and
//! appendices) on the synthetic dataset stand-ins.
//!
//! ```sh
//! cargo run --release -p kdash-bench --bin experiments -- all
//! cargo run --release -p kdash-bench --bin experiments -- fig2
//! ```
//!
//! Subcommands: `fig2 fig3 fig4 fig5 fig6 fig7 fig9 table2 sweep-c all`.
//! Environment: `KDASH_NODES` (dataset scale, default 1500),
//! `KDASH_QUERIES` (queries per measurement, default 20), `KDASH_SEED`.
//!
//! Absolute numbers differ from the paper (different hardware, Rust vs C,
//! synthetic data); the *shapes* — who wins, by how many orders of
//! magnitude, where the curves cross — are the reproduction target and are
//! recorded against the paper in EXPERIMENTS.md.

use kdash_baselines::{Bpa, BpaOptions, IterativeRwr, NbLin, NbLinOptions, TopKEngine};
use kdash_bench::{all_datasets, dataset, queries_for, HarnessConfig};
use kdash_core::{IndexOptions, KdashIndex, NodeOrdering};
use kdash_datagen::{dictionary, DatasetProfile};
use kdash_eval::{measure, precision_at_k, Table};
use std::time::Duration;

fn main() {
    let command = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let config = HarnessConfig::from_env();
    println!(
        "# K-dash experiment harness — target n = {}, {} queries per point, seed {}\n",
        config.target_nodes, config.queries, config.seed
    );
    match command.as_str() {
        "fig2" => fig2(&config),
        "fig3" => fig3_fig4(&config, true),
        "fig4" => fig3_fig4(&config, false),
        "fig5" => fig5(&config),
        "fig6" => fig6(&config),
        "fig7" => fig7(&config),
        "fig9" => fig9(&config),
        "table2" => table2(&config),
        "sweep-c" => sweep_c(&config),
        "all" => {
            fig2(&config);
            fig3_fig4(&config, true);
            fig3_fig4(&config, false);
            fig5(&config);
            fig6(&config);
            fig7(&config);
            fig9(&config);
            table2(&config);
            sweep_c(&config);
        }
        other => {
            eprintln!(
                "unknown subcommand '{other}'; expected one of \
                 fig2 fig3 fig4 fig5 fig6 fig7 fig9 table2 sweep-c all"
            );
            std::process::exit(2);
        }
    }
}

fn fmt_s(d: Duration) -> String {
    format!("{:.3e}", d.as_secs_f64())
}

/// Median query wall-clock over the configured query set.
fn median_query_time(mut run: impl FnMut(kdash_graph::NodeId), queries: &[kdash_graph::NodeId]) -> Duration {
    let mut times: Vec<Duration> = queries
        .iter()
        .map(|&q| {
            let (_, m) = measure(3, || run(q));
            m.min
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Figure 2: wall-clock time of K-dash(5/25/50) vs NB_LIN(100/1000) vs
/// BPA(5/25/50) on the five datasets.
fn fig2(config: &HarnessConfig) {
    println!("## Figure 2 — query wall-clock time [s] per dataset\n");
    println!(
        "(paper: K-dash beats NB_LIN by >=4 orders of magnitude and BPA by more, on all datasets)\n"
    );
    let mut table = Table::new(vec![
        "dataset", "K-dash(5)", "K-dash(25)", "K-dash(50)", "NB_LIN(lo)", "NB_LIN(hi)",
        "BPA(5)", "BPA(25)", "BPA(50)",
    ]);
    for (profile, graph) in all_datasets(config) {
        let n = graph.num_nodes();
        let queries = queries_for(&graph, config.queries);
        let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");
        let rank_lo = config.scaled_rank(100, n);
        let rank_hi = config.scaled_rank(1000, n);
        let nblin_lo = NbLin::build(
            &graph,
            NbLinOptions { target_rank: rank_lo, restart_probability: 0.95, seed: config.seed },
        )
        .expect("nblin lo");
        let nblin_hi = NbLin::build(
            &graph,
            NbLinOptions { target_rank: rank_hi, restart_probability: 0.95, seed: config.seed },
        )
        .expect("nblin hi");
        let bpa = Bpa::build(
            &graph,
            BpaOptions {
                num_hubs: config.scaled_hubs(1000, n),
                restart_probability: 0.95,
                ..Default::default()
            },
        );
        let kd = |k: usize| {
            fmt_s(median_query_time(
                |q| {
                    let _ = index.top_k(q, k).expect("query");
                },
                &queries,
            ))
        };
        let nb = |e: &NbLin| {
            fmt_s(median_query_time(
                |q| {
                    let _ = e.top_k(q, 5);
                },
                &queries,
            ))
        };
        let bp = |k: usize| {
            fmt_s(median_query_time(
                |q| {
                    let _ = bpa.top_k(q, k);
                },
                &queries,
            ))
        };
        table.add_row(vec![
            format!("{profile} (n={n}, m={})", graph.num_edges()),
            kd(5),
            kd(25),
            kd(50),
            nb(&nblin_lo),
            nb(&nblin_hi),
            bp(5),
            bp(25),
            bp(50),
        ]);
    }
    table.print();
    println!();
}

/// Figures 3 and 4: precision (fig3) / wall-clock (fig4) of NB_LIN and BPA
/// against their parameter (SVD target rank / number of hubs) on the
/// Dictionary dataset. K-dash is the parameter-free horizontal line.
fn fig3_fig4(config: &HarnessConfig, precision_mode: bool) {
    let which = if precision_mode { "Figure 3 — precision@5" } else { "Figure 4 — wall-clock [s]" };
    println!("## {which} vs target rank / #hubs (Dictionary)\n");
    if precision_mode {
        println!("(paper: K-dash pinned at 1.0; NB_LIN well below 1 and rising with rank; BPA ~constant)\n");
    } else {
        println!("(paper: K-dash orders of magnitude below both; NB_LIN grows with rank; BPA shrinks with hubs)\n");
    }
    let graph = dataset(DatasetProfile::Dictionary, config);
    let n = graph.num_nodes();
    let queries = queries_for(&graph, config.queries);
    let k = 5usize;
    let exact = IterativeRwr::new(&graph, 0.95);
    let truths: Vec<Vec<kdash_graph::NodeId>> = queries
        .iter()
        .map(|&q| exact.top_k(q, k).into_iter().map(|(v, _)| v).collect())
        .collect();
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");

    let mut table = Table::new(vec!["paper param", "scaled param", "NB_LIN", "BPA", "K-dash"]);
    for paper_param in [100usize, 400, 700, 1000] {
        let scaled = config.scaled_rank(paper_param, n);
        let nblin = NbLin::build(
            &graph,
            NbLinOptions { target_rank: scaled, restart_probability: 0.95, seed: config.seed },
        )
        .expect("nblin");
        let bpa = Bpa::build(
            &graph,
            BpaOptions { num_hubs: scaled, restart_probability: 0.95, ..Default::default() },
        );
        let (nb_cell, bpa_cell, kd_cell) = if precision_mode {
            let avg = |f: &dyn Fn(kdash_graph::NodeId) -> Vec<kdash_graph::NodeId>| {
                let total: f64 = queries
                    .iter()
                    .zip(&truths)
                    .map(|(&q, truth)| precision_at_k(&f(q), truth, k))
                    .sum();
                format!("{:.3}", total / queries.len() as f64)
            };
            (
                avg(&|q| nblin.top_k(q, k).into_iter().map(|(v, _)| v).collect()),
                avg(&|q| bpa.top_k(q, k).into_iter().map(|(v, _)| v).collect()),
                avg(&|q| index.top_k(q, k).expect("query").nodes()),
            )
        } else {
            (
                fmt_s(median_query_time(|q| { let _ = nblin.top_k(q, k); }, &queries)),
                fmt_s(median_query_time(|q| { let _ = bpa.top_k(q, k); }, &queries)),
                fmt_s(median_query_time(|q| { let _ = index.top_k(q, k); }, &queries)),
            )
        };
        table.add_row(vec![
            paper_param.to_string(),
            scaled.to_string(),
            nb_cell,
            bpa_cell,
            kd_cell,
        ]);
    }
    table.print();
    println!();
}

/// Figure 5: ratio of inverse-matrix nonzeros to graph edges per
/// reordering strategy, plus the RCM / MinDegree extensions.
fn fig5(config: &HarnessConfig) {
    println!("## Figure 5 — nnz(L⁻¹)+nnz(U⁻¹) per edge, by reordering\n");
    println!("(paper: Degree/Cluster/Hybrid near 1–10; Random up to 10^4)\n");
    let orderings: Vec<NodeOrdering> = vec![
        NodeOrdering::Degree,
        NodeOrdering::Cluster,
        NodeOrdering::Hybrid,
        NodeOrdering::Random { seed: config.seed },
        NodeOrdering::ReverseCuthillMcKee,
        NodeOrdering::MinDegree,
    ];
    let mut headers = vec!["dataset".to_string()];
    headers.extend(orderings.iter().map(|o| o.name().to_string()));
    let mut table = Table::new(headers);
    for (profile, graph) in all_datasets(config) {
        let mut row = vec![format!("{profile} (m={})", graph.num_edges())];
        for &ordering in &orderings {
            let index = KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() })
                .expect("build");
            row.push(format!("{:.1}", index.stats().inverse_nnz_ratio()));
        }
        table.add_row(row);
    }
    table.print();
    println!();
}

/// Figure 6: precomputation time per reordering strategy.
fn fig6(config: &HarnessConfig) {
    println!("## Figure 6 — precomputation time [s] by reordering\n");
    println!("(paper: Degree/Cluster/Hybrid up to 140x faster than Random)\n");
    let orderings: Vec<NodeOrdering> = vec![
        NodeOrdering::Degree,
        NodeOrdering::Cluster,
        NodeOrdering::Hybrid,
        NodeOrdering::Random { seed: config.seed },
    ];
    let mut headers = vec!["dataset".to_string()];
    headers.extend(orderings.iter().map(|o| o.name().to_string()));
    let mut table = Table::new(headers);
    for (profile, graph) in all_datasets(config) {
        let mut row = vec![profile.name().to_string()];
        for &ordering in &orderings {
            let (index, d) = kdash_eval::time_once(|| {
                KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() })
                    .expect("build")
            });
            drop(index);
            row.push(fmt_s(d));
        }
        table.add_row(row);
    }
    table.print();
    println!();
}

/// Figure 7: query time with and without the tree-estimation pruning.
fn fig7(config: &HarnessConfig) {
    println!("## Figure 7 — effect of tree estimation (query time [s])\n");
    println!("(paper: pruning up to 1020x faster, on every dataset)\n");
    let mut table = Table::new(vec![
        "dataset",
        "K-dash",
        "Without pruning",
        "speedup",
        "computed/expanded/reachable",
    ]);
    for (profile, graph) in all_datasets(config) {
        let queries = queries_for(&graph, config.queries);
        let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");
        let pruned =
            median_query_time(|q| { let _ = index.top_k(q, 5).expect("q"); }, &queries);
        let unpruned =
            median_query_time(|q| { let _ = index.top_k_unpruned(q, 5).expect("q"); }, &queries);
        // Work ratio for context. The lazy frontier stops discovering on
        // early termination, so a pruned run's `reachable` is only the
        // discovered-so-far count — a plain BFS (reachability is
        // permutation-invariant, no proximity work) supplies the true
        // denominator, and `frontier_expanded` is the traversal work
        // actually paid.
        let (mut comp, mut expanded, mut reach) = (0usize, 0usize, 0usize);
        for &q in &queries {
            let s = index.top_k(q, 5).expect("q").stats;
            comp += s.proximity_computations;
            expanded += s.frontier_expanded;
            reach += kdash_graph::BfsTree::new(&graph, q).num_reachable();
        }
        table.add_row(vec![
            profile.name().to_string(),
            fmt_s(pruned),
            fmt_s(unpruned),
            format!("{:.1}x", unpruned.as_secs_f64() / pruned.as_secs_f64().max(1e-12)),
            format!("{comp}/{expanded}/{reach}"),
        ]);
    }
    table.print();
    println!();
}

/// Figure 9 (Appendix D.1): number of exact proximity computations with
/// the query-rooted tree vs a randomly rooted tree.
fn fig9(config: &HarnessConfig) {
    println!("## Figure 9 — proximity computations, query root vs random root\n");
    println!("(paper: query rooting needs orders of magnitude fewer computations)\n");
    let mut table = Table::new(vec!["dataset", "K-dash", "Random root", "ratio"]);
    for (profile, graph) in all_datasets(config) {
        let queries = queries_for(&graph, config.queries);
        let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");
        let mut kdash_total = 0usize;
        let mut random_total = 0usize;
        for (i, &q) in queries.iter().enumerate() {
            kdash_total += index.top_k(q, 5).expect("q").stats.proximity_computations;
            random_total += index
                .top_k_random_root(q, 5, config.seed + i as u64)
                .expect("q")
                .stats
                .proximity_computations;
        }
        let avg_k = kdash_total as f64 / queries.len() as f64;
        let avg_r = random_total as f64 / queries.len() as f64;
        table.add_row(vec![
            profile.name().to_string(),
            format!("{avg_k:.1}"),
            format!("{avg_r:.1}"),
            format!("{:.1}x", avg_r / avg_k.max(1e-9)),
        ]);
    }
    table.print();
    println!();
}

/// Table 2: the dictionary case study. The paper lists the top-5 terms for
/// five query terms under K-dash and NB_LIN; here the dictionary is
/// synthetic with planted clusters, so alongside the ranked labels we
/// report how many of the planted cluster members each engine recovered.
fn table2(config: &HarnessConfig) {
    println!("## Table 2 — ranked term lists, K-dash vs NB_LIN (planted dictionary)\n");
    println!("(paper: K-dash surfaces the semantically related terms; NB_LIN scatters)\n");
    let data = dictionary(config.target_nodes, config.seed);
    let graph = &data.graph;
    let index = KdashIndex::build(graph, IndexOptions::default()).expect("index");
    let rank = config.scaled_rank(1000, graph.num_nodes());
    let nblin = NbLin::build(
        graph,
        NbLinOptions { target_rank: rank, restart_probability: 0.95, seed: config.seed },
    )
    .expect("nblin");
    let k = 5usize;
    let mut table = Table::new(vec!["term", "method", "1", "2", "3", "4", "5", "planted hits"]);
    for cluster in &data.clusters {
        let head = cluster[0];
        let planted = &cluster[1..];
        let label = |v: kdash_graph::NodeId| data.labels[v as usize].clone();
        // Exclude the query itself (rank 1 in both engines, uninformative).
        let kdash_terms: Vec<kdash_graph::NodeId> =
            index.top_k(head, k + 1).expect("q").nodes().into_iter().filter(|&v| v != head).take(k).collect();
        let nblin_terms: Vec<kdash_graph::NodeId> =
            nblin.top_k(head, k + 1).into_iter().map(|(v, _)| v).filter(|&v| v != head).take(k).collect();
        for (method, terms) in [("K-dash", &kdash_terms), ("NB_LIN", &nblin_terms)] {
            let hits = terms.iter().filter(|t| planted.contains(t)).count();
            let mut row = vec![label(head), method.to_string()];
            row.extend(terms.iter().map(|&t| label(t)));
            while row.len() < 7 {
                row.push("-".into());
            }
            row.push(format!("{hits}/{k}"));
            table.add_row(row);
        }
    }
    table.print();
    println!();
}

/// §6.3.3 (text): robustness of the pruning across restart probabilities.
fn sweep_c(config: &HarnessConfig) {
    println!("## Restart-probability sweep (§6.3.3) — Dictionary\n");
    println!("(paper: pruning effective under all c examined)\n");
    let graph = dataset(DatasetProfile::Dictionary, config);
    let queries = queries_for(&graph, config.queries);
    // `discovered` (SearchStats::reachable) is what the lazy frontier
    // enumerated before stopping — a lower bound on true reachability on
    // early-terminated queries, which is exactly the work saving this
    // sweep illustrates across c.
    let mut table =
        Table::new(vec!["c", "query time [s]", "computed/discovered", "early-terminated"]);
    for c in [0.5, 0.7, 0.9, 0.95, 0.99] {
        let index = KdashIndex::build(
            &graph,
            IndexOptions { restart_probability: c, ..Default::default() },
        )
        .expect("index");
        let t = median_query_time(|q| { let _ = index.top_k(q, 5).expect("q"); }, &queries);
        let (mut comp, mut discovered, mut early) = (0usize, 0usize, 0usize);
        for &q in &queries {
            let s = index.top_k(q, 5).expect("q").stats;
            comp += s.proximity_computations;
            discovered += s.reachable;
            early += s.terminated_early as usize;
        }
        table.add_row(vec![
            format!("{c}"),
            fmt_s(t),
            format!("{comp}/{discovered}"),
            format!("{early}/{}", queries.len()),
        ]);
    }
    table.print();
    println!();
}
