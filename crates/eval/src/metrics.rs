//! Ranking-quality metrics.

use kdash_graph::NodeId;

/// The paper's precision (§6.2): the fraction of the approach's top-k
/// nodes that appear in the exact top-k. Both lists are truncated to `k`;
/// an empty ground truth yields precision 1 (nothing to miss).
pub fn precision_at_k(approx: &[NodeId], exact: &[NodeId], k: usize) -> f64 {
    let k = k.min(exact.len()).max(1);
    if exact.is_empty() {
        return 1.0;
    }
    let truth: std::collections::HashSet<&NodeId> = exact.iter().take(k).collect();
    let considered = approx.iter().take(k);
    let hits = considered.filter(|n| truth.contains(n)).count();
    hits as f64 / k as f64
}

/// Recall of the exact top-k inside the (possibly longer) answer list —
/// the guarantee BPA advertises.
pub fn recall_at_k(answer: &[NodeId], exact: &[NodeId], k: usize) -> f64 {
    let k = k.min(exact.len()).max(1);
    if exact.is_empty() {
        return 1.0;
    }
    let answer_set: std::collections::HashSet<&NodeId> = answer.iter().collect();
    let hits = exact.iter().take(k).filter(|n| answer_set.contains(n)).count();
    hits as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_precision() {
        assert_eq!(precision_at_k(&[1, 2, 3], &[3, 2, 1], 3), 1.0);
    }

    #[test]
    fn partial_precision() {
        assert!((precision_at_k(&[1, 2, 9], &[3, 2, 1], 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(precision_at_k(&[8, 9, 7], &[1, 2, 3], 3), 0.0);
    }

    #[test]
    fn truncates_to_k() {
        // Only the first k entries of each side matter.
        assert_eq!(precision_at_k(&[1, 9, 9, 2], &[1, 5, 6, 2], 2), 0.5);
    }

    #[test]
    fn k_larger_than_truth_clamps() {
        assert_eq!(precision_at_k(&[1, 2], &[1, 2], 10), 1.0);
    }

    #[test]
    fn recall_rewards_long_answers() {
        // BPA returns extra nodes; recall still counts only the true top-k.
        assert_eq!(recall_at_k(&[5, 4, 3, 2, 1], &[1, 2], 2), 1.0);
        assert_eq!(recall_at_k(&[5, 4], &[1, 2], 2), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(precision_at_k(&[], &[], 5), 1.0);
        assert_eq!(recall_at_k(&[], &[], 5), 1.0);
        assert_eq!(precision_at_k(&[], &[1], 1), 0.0);
    }
}
