//! # kdash-eval
//!
//! Shared evaluation plumbing for the experiment harness: the precision
//! metric of §6.2, timing helpers, and aligned text tables that print the
//! same rows/series the paper's figures plot.

pub mod metrics;
pub mod table;
pub mod timing;

pub use metrics::{precision_at_k, recall_at_k};
pub use table::Table;
pub use timing::{measure, time_once, Measurement};
