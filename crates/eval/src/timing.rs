//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Summary statistics over repeated timed runs.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (robust to one-off hiccups; what the tables report).
    pub median: Duration,
    /// Fastest observed run.
    pub min: Duration,
    /// Number of runs.
    pub runs: usize,
}

impl Measurement {
    /// Median seconds as `f64` — convenient for log-scale tables.
    pub fn median_secs(&self) -> f64 {
        self.median.as_secs_f64()
    }
}

/// Times a single invocation.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `runs` times (at least once) and aggregates the timings.
/// The closure's result is returned from the final run so the optimizer
/// cannot discard the work.
pub fn measure<R>(runs: usize, mut f: impl FnMut() -> R) -> (R, Measurement) {
    let runs = runs.max(1);
    let mut durations = Vec::with_capacity(runs);
    let mut last = None;
    for _ in 0..runs {
        let (out, d) = time_once(&mut f);
        durations.push(d);
        last = Some(out);
    }
    durations.sort_unstable();
    let total: Duration = durations.iter().sum();
    let measurement = Measurement {
        mean: total / runs as u32,
        median: durations[runs / 2],
        min: durations[0],
        runs,
    };
    (last.expect("runs >= 1"), measurement)
}

/// Formats a duration in the scientific-notation seconds the paper's
/// log-scale figures use (e.g. `3.21e-5 s`).
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.3e}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_result() {
        let (v, d) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.is_zero());
    }

    #[test]
    fn measure_aggregates() {
        let mut calls = 0;
        let (out, m) = measure(5, || {
            calls += 1;
            calls
        });
        assert_eq!(out, 5);
        assert_eq!(m.runs, 5);
        assert!(m.min <= m.median);
        assert!(m.median <= m.mean * 5); // sanity, not strict
    }

    #[test]
    fn measure_clamps_zero_runs() {
        let (_, m) = measure(0, || ());
        assert_eq!(m.runs, 1);
    }

    #[test]
    fn fmt_secs_is_scientific() {
        let s = fmt_secs(Duration::from_micros(32));
        assert!(s.contains('e'), "{s}");
    }
}
