//! Aligned plain-text tables for experiment output.

/// A simple column-aligned table builder. Rows are strings; the printer
/// pads every column to its widest cell.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row; must match the header arity.
    pub fn add_row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string (trailing newline included).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str(cell);
                if i + 1 < cols {
                    for _ in cell.chars().count()..widths[i] + 2 {
                        out.push(' ');
                    }
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["dataset", "time"]);
        t.add_row(vec!["Dictionary", "1.2e-5"]);
        t.add_row(vec!["Email", "3.4e-4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // The "time" column starts at the same offset in every data row.
        let off0 = lines[2].find("1.2e-5").unwrap();
        let off1 = lines[3].find("3.4e-4").unwrap();
        assert_eq!(off0, off1);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new(vec!["a", "b"]).add_row(vec!["only one"]);
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(vec!["x"]);
        assert!(t.render().starts_with('x'));
        assert_eq!(t.num_rows(), 0);
    }
}
