//! Epoch-snapshot serving tier: live queries concurrent with live updates.
//!
//! A built [`kdash_core::KdashIndex`] is immutable, which makes reads
//! trivially parallel — but the ROADMAP north star serves heavy read
//! traffic *while the graph churns*. This crate closes that gap with a
//! classic read-copy-update design: writers never touch the index
//! readers are using, they prepare the next one and swap a pointer.
//!
//! * [`EpochStore`] — the publication point. It holds the current
//!   serving snapshot as an `Arc<KdashIndex>` tagged by its update
//!   epoch. Readers *pin* a snapshot (one `Arc` clone) and detect
//!   staleness with a single atomic load ([`EpochStore::epoch`]); the
//!   store also tracks the latest **acked** write epoch so freshness
//!   lag is observable at any moment.
//! * [`EpochWriter`] — the single-writer update path. It owns a
//!   [`kdash_dynamic::DynamicIndex`] (journaled mode supported, so acks
//!   survive crashes) and, after every committed
//!   `apply`/`apply_coalesced`, clones the patched index into a fresh
//!   immutable snapshot and publishes it. Epoch N+1 is prepared
//!   entirely off the serving path; readers on epoch N are never
//!   blocked, torn, or slowed beyond the memory bandwidth the clone
//!   consumes.
//! * [`ServeLoop`] — the read path: a thread-per-core worker pool
//!   draining a bounded lock-free MPMC request queue ([`MpmcQueue`]).
//!   Each worker pins the current epoch, folds queued queries through a
//!   persistent panic-isolated [`kdash_core::IsolatedExecutor`] (same
//!   outcome semantics as [`kdash_core::batch_top_k_outcomes`], with
//!   per-worker `Searcher` reuse), and re-pins when the epoch moves.
//! * [`ServeMetrics`] — built-in observability, `SearchStats`-style:
//!   per-query latency histograms (p50/p99/p999), queue-depth and shed
//!   counters, freshness-lag distribution and swap-install latency.
//!
//! # Operational guarantees
//!
//! **Epoch semantics.** Every response names the epoch it was computed
//! against ([`ServeResponse::epoch`]) and is **bit-identical** to a
//! standalone [`kdash_core::Searcher::top_k`] against that epoch's
//! pinned snapshot with the same kernel and budget — there is no state
//! in between epochs to observe, so torn reads are impossible by
//! construction. A worker serves a whole drained batch from one pinned
//! epoch; it picks up a newly published epoch at the next batch
//! boundary (bounded by the idle-poll interval, ~200µs, when the queue
//! is empty).
//!
//! **Shedding.** Admission control is the queue bound: when the request
//! queue is full, [`ServeLoop::submit`] fails *immediately* with
//! [`ServeError::Overloaded`] instead of queueing unbounded latency.
//! Nothing about overload panics, and an accepted request is always
//! answered — on shutdown, still-queued requests are failed with
//! [`ServeError::ShuttingDown`], never dropped silently.
//!
//! **Freshness lag.** The lag reported per response
//! ([`ServeResponse::freshness_lag`]) and in the metrics is the number
//! of *acknowledged* write epochs the serving snapshot was behind when
//! the query ran: `acked_epoch − serving_epoch`. Zero means the answer
//! reflects every write the writer has acknowledged (for a journaled
//! writer: every write that is durable). A non-zero lag is transient —
//! it spans exactly the swap-install window (snapshot clone + publish,
//! measured as `swap_install` in the metrics) plus at most one batch
//! drain, and converges back to zero as soon as the publish lands;
//! lag is bounded by the write rate times that window, not by read
//! traffic.
//!
//! **Crash recovery.** With a journaled writer, an acked write is
//! durable before it is acked (write-ahead contract of
//! [`kdash_dynamic::Journal`]). After a crash,
//! [`kdash_dynamic::DynamicIndex::recover`] rebuilds the engine at an
//! epoch ≥ the acked floor, and a new [`EpochWriter`]/[`ServeLoop`]
//! pair resumes serving bit-identical answers from there.

mod epoch;
mod metrics;
mod queue;
mod server;

pub use epoch::{EpochStore, EpochWriter};
pub use metrics::{Histogram, MetricsSnapshot, ServeMetrics};
pub use queue::MpmcQueue;
pub use server::{PendingQuery, ServeLoop, ServeOptions, ServeResponse};

use kdash_core::KdashError;
use std::sync::{Mutex, MutexGuard};

/// How a serving-tier request can fail. Everything is typed — the
/// serving loop never panics on a request path.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control shed the request: the queue was at capacity.
    /// Back off and retry; accepted requests are unaffected.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
        /// The queue's capacity (the admission bound).
        capacity: usize,
    },
    /// The loop is shutting down; the request was not (or will not be)
    /// served.
    ShuttingDown,
    /// The query itself failed — invalid input, exceeded budget, or a
    /// panic inside the search, isolated to this one request.
    Query(KdashError),
    /// A worker thread could not be spawned at startup.
    WorkerSpawn {
        /// The OS error text.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "request shed: queue at capacity ({depth}/{capacity})")
            }
            ServeError::ShuttingDown => write!(f, "serving loop is shutting down"),
            ServeError::Query(e) => write!(f, "query failed: {e}"),
            ServeError::WorkerSpawn { detail } => {
                write!(f, "failed to spawn serve worker: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Locks a mutex, recovering the guard from a poisoned lock. The
/// serving tier holds locks only around pointer-sized swaps and slot
/// fills — no invariant spans a panic inside a critical section, so
/// continuing with the poisoned value is always sound here, and a
/// poisoned publication mutex must not take down every reader.
pub(crate) fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}
