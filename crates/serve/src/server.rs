//! The read path: a thread-per-core worker pool over pinned epochs.
//!
//! [`ServeLoop::start`] spawns one worker per core (configurable).
//! Each worker pins the current [`EpochStore`] snapshot, wraps it in a
//! persistent panic-isolated [`IsolatedExecutor`] (so the `O(n)`
//! searcher scratch is paid once per epoch per worker, not per query),
//! and drains the shared lock-free queue in batches of up to
//! [`ServeOptions::max_batch`] requests — the request-batching
//! equivalent of folding the queue into one
//! [`kdash_core::batch_top_k_outcomes`] call. A single atomic load per
//! drain detects a newly published epoch, at which point the worker
//! re-pins and rebuilds its executor.
//!
//! Admission control is the queue bound: [`ServeLoop::submit`] on a
//! full queue sheds with [`ServeError::Overloaded`] immediately. An
//! accepted request is always answered — per-query failures (bad
//! input, exceeded budget, a panic inside the search) come back as
//! [`ServeError::Query`] on that request alone, and shutdown fails
//! still-queued requests with [`ServeError::ShuttingDown`].

use crate::{lock_unpoisoned, EpochStore, MpmcQueue, ServeError, ServeMetrics};
use kdash_core::{
    BatchOptions, BatchOutcome, GatherKernel, IsolatedExecutor, KdashError, QueryBudget,
    TopKResult,
};
use kdash_graph::NodeId;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Worker threads; `0` means one per available hardware thread.
    pub workers: usize,
    /// Admission bound: requests queued beyond this are shed with
    /// [`ServeError::Overloaded`]. Rounded up to a power of two.
    pub queue_capacity: usize,
    /// Max requests a worker folds into one drained batch (all served
    /// from one pinned epoch, one freshness-lag sample).
    pub max_batch: usize,
    /// Gather-kernel selection for every worker, resolved against the
    /// host once at [`ServeLoop::start`] (unsupported requests fail
    /// typed before any thread spawns).
    pub kernel: GatherKernel,
    /// Per-query work budget; an exceeding query fails with
    /// [`KdashError::BudgetExceeded`] on that request alone.
    pub budget: QueryBudget,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            queue_capacity: 1024,
            max_batch: 32,
            kernel: GatherKernel::default(),
            budget: QueryBudget::default(),
        }
    }
}

/// One queued request.
struct Request {
    query: NodeId,
    k: usize,
    submitted: Instant,
    slot: Arc<ResponseSlot>,
}

/// A served top-k answer, tagged with the epoch that produced it.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The update epoch of the snapshot this answer was computed
    /// against — the answer is bit-identical to a standalone
    /// [`kdash_core::Searcher::top_k`] on that epoch's index.
    pub epoch: u64,
    /// Acked write epochs the serving snapshot was behind when the
    /// query ran (0 = the answer reflects every acknowledged write).
    pub freshness_lag: u64,
    /// The top-k result itself.
    pub result: TopKResult,
}

/// The one-shot rendezvous between a worker and a waiting client.
struct ResponseSlot {
    done: Mutex<Option<Result<ServeResponse, ServeError>>>,
    cv: Condvar,
}

impl ResponseSlot {
    fn new() -> Self {
        ResponseSlot { done: Mutex::new(None), cv: Condvar::new() }
    }

    fn fulfill(&self, response: Result<ServeResponse, ServeError>) {
        let mut guard = lock_unpoisoned(&self.done);
        if guard.is_none() {
            *guard = Some(response);
        }
        drop(guard);
        self.cv.notify_all();
    }
}

/// A submitted, not-yet-answered request (see [`ServeLoop::submit`]).
pub struct PendingQuery {
    slot: Arc<ResponseSlot>,
}

impl PendingQuery {
    /// Blocks until the request is answered. Every accepted request is
    /// answered — by a worker, or with [`ServeError::ShuttingDown`] at
    /// loop shutdown — so this cannot hang on a live loop.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        let mut guard = lock_unpoisoned(&self.slot.done);
        loop {
            if let Some(response) = guard.take() {
                return response;
            }
            guard = match self.slot.cv.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Non-blocking check; returns `self` back while unanswered.
    pub fn try_wait(self) -> Result<Result<ServeResponse, ServeError>, PendingQuery> {
        let mut guard = lock_unpoisoned(&self.slot.done);
        match guard.take() {
            Some(response) => Ok(response),
            None => {
                drop(guard);
                Err(self)
            }
        }
    }
}

/// State shared between the handle and the workers.
struct Shared {
    store: Arc<EpochStore>,
    queue: MpmcQueue<Request>,
    metrics: Arc<ServeMetrics>,
    stop: AtomicBool,
    paused: AtomicBool,
    sleepers: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    max_batch: usize,
    kernel: GatherKernel,
    budget: QueryBudget,
}

/// How long an idle worker sleeps between queue polls — also the upper
/// bound on how stale a pinned epoch can go unnoticed while idle.
const IDLE_POLL: Duration = Duration::from_micros(200);

impl Shared {
    /// Parks until work might exist: a submit wakeup, the poll timeout,
    /// or shutdown. The queue re-check under the lock closes the race
    /// with a submitter that pushed between our empty pop and here.
    fn idle_wait(&self) {
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let guard = lock_unpoisoned(&self.idle_lock);
        let has_work = !self.queue.is_empty() && !self.paused.load(Ordering::Acquire);
        if !self.stop.load(Ordering::Acquire) && !has_work {
            let woken = match self.idle_cv.wait_timeout(guard, IDLE_POLL) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
            drop(woken);
        }
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes one parked worker if any are parked (cheap no-op path for
    /// the common case of busy workers).
    fn wake_one(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(lock_unpoisoned(&self.idle_lock));
            self.idle_cv.notify_one();
        }
    }

    fn wake_all(&self) {
        drop(lock_unpoisoned(&self.idle_lock));
        self.idle_cv.notify_all();
    }
}

/// The serving loop: workers + queue + metrics behind one handle.
/// Submit from any thread ([`ServeLoop::submit`] takes `&self`); drop
/// or [`shutdown`](ServeLoop::shutdown) to stop — both join the
/// workers and fail still-queued requests with
/// [`ServeError::ShuttingDown`].
pub struct ServeLoop {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeLoop {
    /// Spawns the worker pool over `store`. Fails typed if the kernel
    /// selection is unsupported on this host or a worker thread cannot
    /// be spawned (no partially started loop is left behind: spawned
    /// workers are stopped and joined on the error path).
    pub fn start(store: Arc<EpochStore>, options: ServeOptions) -> Result<ServeLoop, ServeError> {
        options
            .kernel
            .resolve()
            .map_err(|e| ServeError::Query(KdashError::from(e)))?;
        let workers = if options.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            options.workers
        }
        .max(1);

        let shared = Arc::new(Shared {
            store,
            queue: MpmcQueue::with_capacity(options.queue_capacity),
            metrics: Arc::new(ServeMetrics::new()),
            stop: AtomicBool::new(false),
            paused: AtomicBool::new(false),
            sleepers: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            max_batch: options.max_batch.max(1),
            kernel: options.kernel,
            budget: options.budget,
        });

        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let worker_shared = Arc::clone(&shared);
            let spawn = std::thread::Builder::new()
                .name(format!("kdash-serve-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawn {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    let mut partial = ServeLoop { shared, workers: handles };
                    partial.stop_and_join();
                    return Err(ServeError::WorkerSpawn { detail: e.to_string() });
                }
            }
        }
        Ok(ServeLoop { shared, workers: handles })
    }

    /// Submits a query for `k` neighbours. Returns immediately: the
    /// [`PendingQuery`] resolves when a worker answers. Sheds with
    /// [`ServeError::Overloaded`] when the queue is at capacity.
    pub fn submit(&self, query: NodeId, k: usize) -> Result<PendingQuery, ServeError> {
        if self.shared.stop.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        self.shared.metrics.record_submitted(self.shared.queue.len() + 1);
        let slot = Arc::new(ResponseSlot::new());
        let request =
            Request { query, k, submitted: Instant::now(), slot: Arc::clone(&slot) };
        match self.shared.queue.push(request) {
            Ok(()) => {
                self.shared.wake_one();
                Ok(PendingQuery { slot })
            }
            Err(_rejected) => {
                self.shared.metrics.record_shed();
                Err(ServeError::Overloaded {
                    depth: self.shared.queue.len(),
                    capacity: self.shared.queue.capacity(),
                })
            }
        }
    }

    /// [`submit`](Self::submit) + [`PendingQuery::wait`] in one call.
    pub fn query_blocking(&self, query: NodeId, k: usize) -> Result<ServeResponse, ServeError> {
        self.submit(query, k)?.wait()
    }

    /// Pauses request draining (submissions still queue up to the
    /// admission bound — useful for maintenance windows and for
    /// deterministic overload tests). Idempotent.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resumes request draining after [`pause`](Self::pause).
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
        self.shared.wake_all();
    }

    /// The shared metrics (also hand this to
    /// [`crate::EpochWriter::attach_metrics`] so swap-install latency
    /// lands in the same snapshot).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// The store this loop serves from.
    pub fn store(&self) -> Arc<EpochStore> {
        Arc::clone(&self.shared.store)
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Approximate current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// The admission bound (requested capacity rounded up to a power
    /// of two).
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue.capacity()
    }

    /// Stops the loop: workers finish their current batch and exit,
    /// then every still-queued request is failed with
    /// [`ServeError::ShuttingDown`]. Dropping the loop does the same.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake_all();
        for handle in self.workers.drain(..) {
            // Workers never unwind (every query runs inside the
            // executor's catch_unwind); a failed join would mean a bug
            // in the drain loop itself — don't propagate the panic
            // through shutdown.
            let _ = handle.join();
        }
        while let Some(request) = self.shared.queue.pop() {
            request.slot.fulfill(Err(ServeError::ShuttingDown));
        }
    }
}

impl Drop for ServeLoop {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl std::fmt::Debug for ServeLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeLoop")
            .field("workers", &self.workers.len())
            .field("queue_depth", &self.shared.queue.len())
            .field("queue_capacity", &self.shared.queue.capacity())
            .field("epoch", &self.shared.store.epoch())
            .finish()
    }
}

/// One worker: pin the current epoch, drain batches against it until
/// the epoch moves or the loop stops, repeat.
fn worker_loop(shared: &Shared) {
    let mut batch: Vec<Request> = Vec::with_capacity(shared.max_batch);
    while !shared.stop.load(Ordering::Acquire) {
        let pinned = shared.store.pin();
        let pinned_epoch = pinned.update_epoch();
        let options =
            BatchOptions { threads: 1, kernel: shared.kernel, budget: shared.budget };
        // The kernel was resolved at start, so this cannot fail on the
        // same host; if it somehow does, answer requests with the typed
        // error rather than spinning or panicking.
        let mut executor = IsolatedExecutor::new(&pinned, options);

        while !shared.stop.load(Ordering::Acquire)
            && shared.store.epoch() == pinned_epoch
        {
            if shared.paused.load(Ordering::Acquire) {
                shared.idle_wait();
                continue;
            }
            batch.clear();
            while batch.len() < shared.max_batch {
                match shared.queue.pop() {
                    Some(request) => batch.push(request),
                    None => break,
                }
            }
            if batch.is_empty() {
                shared.idle_wait();
                continue;
            }
            shared.metrics.record_batch(batch.len());
            let lag = shared.store.acked_epoch().saturating_sub(pinned_epoch);
            for request in batch.drain(..) {
                let outcome = match executor.as_mut() {
                    Ok(executor) => executor.run(request.query, request.k),
                    Err(e) => BatchOutcome::Failed(e.clone()),
                };
                let response = match outcome {
                    BatchOutcome::Ok(result) => {
                        Ok(ServeResponse { epoch: pinned_epoch, freshness_lag: lag, result })
                    }
                    BatchOutcome::Failed(e) => Err(ServeError::Query(e)),
                };
                shared.metrics.record_done(request.submitted.elapsed(), lag, response.is_ok());
                request.slot.fulfill(response);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpochWriter;
    use kdash_core::{IndexOptions, KdashIndex};
    use kdash_dynamic::{DynamicIndex, UpdateBatch};
    use kdash_graph::{EdgeEdit, GraphBuilder};

    fn small_index() -> KdashIndex {
        let mut b = GraphBuilder::new(16);
        for v in 0..16u32 {
            b.add_edge(v, (v + 1) % 16, 1.0);
            b.add_edge(v, (v + 3) % 16, 0.5);
        }
        KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
    }

    #[test]
    fn serves_queries_and_shuts_down() {
        let engine = DynamicIndex::new(small_index()).unwrap();
        let (_writer, store) = EpochWriter::new(engine);
        let loop_ = ServeLoop::start(
            Arc::clone(&store),
            ServeOptions { workers: 2, ..Default::default() },
        )
        .unwrap();
        for q in 0..16u32 {
            let response = loop_.query_blocking(q, 5).unwrap();
            assert_eq!(response.epoch, store.epoch());
            assert_eq!(response.freshness_lag, 0);
            assert!(!response.result.items.is_empty());
        }
        let metrics = loop_.metrics();
        loop_.shutdown();
        let snap = metrics.snapshot();
        assert_eq!(snap.completed, 16);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.shed, 0);
    }

    #[test]
    fn per_query_errors_are_typed_and_isolated() {
        let engine = DynamicIndex::new(small_index()).unwrap();
        let (_writer, store) = EpochWriter::new(engine);
        let loop_ =
            ServeLoop::start(store, ServeOptions { workers: 1, ..Default::default() }).unwrap();
        // Out-of-bounds query fails alone; the next query still works.
        match loop_.query_blocking(999, 5) {
            Err(ServeError::Query(KdashError::NodeOutOfBounds { node: 999, .. })) => {}
            other => panic!("expected typed out-of-bounds, got {other:?}"),
        }
        assert!(loop_.query_blocking(3, 5).is_ok());
    }

    #[test]
    fn paused_loop_sheds_at_capacity_and_recovers() {
        let engine = DynamicIndex::new(small_index()).unwrap();
        let (_writer, store) = EpochWriter::new(engine);
        let loop_ = ServeLoop::start(
            store,
            ServeOptions { workers: 1, queue_capacity: 4, ..Default::default() },
        )
        .unwrap();
        loop_.pause();
        // Let the worker observe the pause before filling the queue, so
        // the admitted/shed split below is exact.
        std::thread::sleep(Duration::from_millis(20));
        let mut pending = Vec::new();
        let mut shed = 0;
        for q in 0..10u32 {
            match loop_.submit(q % 16, 3) {
                Ok(p) => pending.push(p),
                Err(ServeError::Overloaded { capacity, .. }) => {
                    assert_eq!(capacity, 4);
                    shed += 1;
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        }
        assert_eq!(pending.len(), 4, "exactly the queue capacity is admitted");
        assert_eq!(shed, 6);
        loop_.resume();
        for p in pending {
            assert!(p.wait().is_ok());
        }
        assert!(loop_.metrics().snapshot().shed_rate() > 0.5);
    }

    #[test]
    fn shutdown_fails_queued_requests_typed() {
        let engine = DynamicIndex::new(small_index()).unwrap();
        let (_writer, store) = EpochWriter::new(engine);
        let loop_ = ServeLoop::start(
            store,
            ServeOptions { workers: 1, queue_capacity: 8, ..Default::default() },
        )
        .unwrap();
        loop_.pause();
        std::thread::sleep(Duration::from_millis(20));
        let pending: Vec<PendingQuery> =
            (0..4u32).filter_map(|q| loop_.submit(q, 3).ok()).collect();
        loop_.shutdown();
        for p in pending {
            match p.wait() {
                Ok(_) | Err(ServeError::ShuttingDown) => {}
                other => panic!("expected served or ShuttingDown, got {other:?}"),
            }
        }
    }

    #[test]
    fn workers_repin_after_publish() {
        let engine = DynamicIndex::new(small_index()).unwrap();
        let (mut writer, store) = EpochWriter::new(engine);
        let loop_ = ServeLoop::start(
            Arc::clone(&store),
            ServeOptions { workers: 1, ..Default::default() },
        )
        .unwrap();
        writer.attach_metrics(loop_.metrics());
        let epoch0 = store.epoch();
        let batch =
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 0, dst: 8, weight: 2.0 }]).unwrap();
        writer.apply(&batch).unwrap();
        // Poll until a served response carries the new epoch.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let response = loop_.query_blocking(0, 5).unwrap();
            if response.epoch == epoch0 + 1 {
                break;
            }
            assert!(Instant::now() < deadline, "worker never re-pinned");
        }
        assert_eq!(loop_.metrics().snapshot().swaps, 1);
    }
}
