//! Epoch publication: immutable index snapshots behind one atomic load.
//!
//! The write side ([`EpochWriter`]) owns the only mutable
//! [`DynamicIndex`]; after every committed apply it clones the patched
//! index into a fresh `Arc<KdashIndex>` and swaps it into the
//! [`EpochStore`]. The read side pins the current snapshot (one `Arc`
//! clone under a mutex held for a pointer copy) and thereafter detects
//! staleness with a single atomic load — queries on a pinned epoch run
//! against memory no writer will ever touch again, so readers are
//! wait-free with respect to writers.

use crate::{lock_unpoisoned, ServeMetrics};
use kdash_core::{KdashIndex, Result};
use kdash_dynamic::{DynamicIndex, UpdateBatch, UpdateReport};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The publication point for immutable index epochs.
///
/// Holds the current serving snapshot and two epoch counters: the
/// **serving** epoch (what [`pin`](Self::pin) returns) and the
/// **acked** epoch (the newest write the writer has acknowledged —
/// for a journaled writer, acknowledged means durable). Their
/// difference is the instantaneous freshness lag.
#[derive(Debug)]
pub struct EpochStore {
    /// Update epoch of the currently published snapshot. Mirrors
    /// `current`'s epoch so readers can check staleness without the
    /// mutex: one `Acquire` load.
    epoch: AtomicU64,
    /// Newest epoch the writer has acknowledged (monotone).
    acked: AtomicU64,
    /// The published snapshot. The mutex is held only for the pointer
    /// swap/clone — never across a query or an apply.
    current: Mutex<Arc<KdashIndex>>,
}

impl EpochStore {
    /// Publishes `index` as the initial epoch.
    pub fn new(index: KdashIndex) -> Self {
        let epoch = index.update_epoch();
        EpochStore {
            epoch: AtomicU64::new(epoch),
            acked: AtomicU64::new(epoch),
            current: Mutex::new(Arc::new(index)),
        }
    }

    /// The serving epoch — the epoch [`pin`](Self::pin) would return
    /// right now. One atomic load; this is the reader's staleness
    /// check.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The newest acknowledged write epoch.
    pub fn acked_epoch(&self) -> u64 {
        self.acked.load(Ordering::Acquire)
    }

    /// Instantaneous freshness lag: acked epochs not yet serving.
    /// Non-zero only inside the swap-install window (snapshot clone +
    /// publish); converges to zero when the publish lands.
    pub fn freshness_lag(&self) -> u64 {
        self.acked_epoch().saturating_sub(self.epoch())
    }

    /// Pins the current snapshot: an `Arc` clone the caller can query
    /// for as long as it likes — published epochs are immutable, the
    /// writer only ever swaps the pointer. Pair with
    /// [`epoch`](Self::epoch) to notice when a newer epoch lands.
    pub fn pin(&self) -> Arc<KdashIndex> {
        Arc::clone(&lock_unpoisoned(&self.current))
    }

    /// Marks `epoch` acknowledged (monotone maximum).
    pub(crate) fn mark_acked(&self, epoch: u64) {
        self.acked.fetch_max(epoch, Ordering::AcqRel);
    }

    /// Publishes a new snapshot and then advances the serving epoch —
    /// in that order, so a reader that observes the new epoch and pins
    /// is guaranteed a snapshot at least that new.
    pub(crate) fn publish(&self, index: Arc<KdashIndex>) {
        let epoch = index.update_epoch();
        *lock_unpoisoned(&self.current) = index;
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// The single-writer update path: owns the [`DynamicIndex`] and
/// publishes a fresh immutable snapshot after every committed apply.
///
/// Epoch N+1 is prepared entirely *off the serving path*: the engine
/// patches its private copy (readers keep serving epoch N untouched),
/// then the patched index is cloned into an `Arc` and swapped in. The
/// clone+publish duration is the swap-install latency recorded in
/// [`ServeMetrics`] — the only window in which freshness lag is
/// non-zero.
///
/// Journaled engines work unchanged: the write-ahead append+fsync
/// happens inside the engine *before* the patch installs, so by the
/// time a snapshot publishes, the epoch it advertises is durable.
#[derive(Debug)]
pub struct EpochWriter {
    engine: DynamicIndex,
    store: Arc<EpochStore>,
    metrics: Option<Arc<ServeMetrics>>,
}

impl EpochWriter {
    /// Wraps `engine` and creates the store serving its current index
    /// as the initial epoch.
    pub fn new(engine: DynamicIndex) -> (EpochWriter, Arc<EpochStore>) {
        let store = Arc::new(EpochStore::new(engine.index().clone()));
        (EpochWriter { engine, store: Arc::clone(&store), metrics: None }, store)
    }

    /// Records swap-install latency into `metrics` (typically the
    /// [`crate::ServeLoop`]'s, so one snapshot shows both sides).
    pub fn attach_metrics(&mut self, metrics: Arc<ServeMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The store this writer publishes to.
    pub fn store(&self) -> Arc<EpochStore> {
        Arc::clone(&self.store)
    }

    /// The wrapped engine (read-only; applies go through the writer so
    /// every commit publishes).
    pub fn engine(&self) -> &DynamicIndex {
        &self.engine
    }

    /// The writer's current epoch (= the engine's index epoch).
    pub fn epoch(&self) -> u64 {
        self.engine.index().update_epoch()
    }

    /// Applies one batch and publishes the resulting epoch. See
    /// [`DynamicIndex::apply`] for the update semantics.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateReport> {
        let batches = std::slice::from_ref(batch);
        self.apply_and_publish(batches, false)
    }

    /// Applies a coalesced queue of batches in one pass and publishes
    /// the resulting epoch. See [`DynamicIndex::apply_coalesced`].
    pub fn apply_coalesced(&mut self, batches: &[UpdateBatch]) -> Result<UpdateReport> {
        self.apply_and_publish(batches, true)
    }

    fn apply_and_publish(
        &mut self,
        batches: &[UpdateBatch],
        coalesced: bool,
    ) -> Result<UpdateReport> {
        let before = self.engine.index().update_epoch();
        let result = if coalesced {
            self.engine.apply_coalesced(batches)
        } else {
            self.engine.apply(&batches[0])
        };
        // Publish whenever the engine committed — which an error does
        // not always preclude: an auto-checkpoint failure surfaces as
        // `Err` *after* the apply itself installed and became durable.
        let after = self.engine.index().update_epoch();
        if after > before {
            self.store.mark_acked(after);
            let t = Instant::now();
            let snapshot = Arc::new(self.engine.index().clone());
            self.store.publish(snapshot);
            if let Some(metrics) = &self.metrics {
                metrics.record_swap(t.elapsed());
            }
        }
        result
    }

    /// Checkpoints a journaled engine (see [`DynamicIndex::checkpoint`]).
    pub fn checkpoint<P: AsRef<Path>>(
        &mut self,
        path: P,
    ) -> std::result::Result<(), kdash_dynamic::JournalError> {
        self.engine.checkpoint(path)
    }

    /// Consumes the writer, returning the engine (e.g. to persist it or
    /// hand it to recovery tooling). The store keeps serving its last
    /// published epoch.
    pub fn into_engine(self) -> DynamicIndex {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_core::{IndexOptions, Searcher};
    use kdash_dynamic::UpdateBatch;
    use kdash_graph::{EdgeEdit, GraphBuilder};

    fn small_index() -> KdashIndex {
        let mut b = GraphBuilder::new(12);
        for v in 0..12u32 {
            b.add_edge(v, (v + 1) % 12, 1.0);
            b.add_edge(v, (v + 5) % 12, 0.5);
        }
        KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
    }

    #[test]
    fn pin_is_stable_across_publishes() {
        let engine = DynamicIndex::new(small_index()).unwrap();
        let (mut writer, store) = EpochWriter::new(engine);
        let pinned = store.pin();
        let epoch0 = pinned.update_epoch();
        assert_eq!(store.epoch(), epoch0);

        let mut searcher = Searcher::new(&pinned);
        let before = searcher.top_k(0, 5).unwrap();

        let batch =
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 0, dst: 7, weight: 2.0 }]).unwrap();
        writer.apply(&batch).unwrap();

        assert_eq!(store.epoch(), epoch0 + 1, "store serves the new epoch");
        assert_eq!(store.acked_epoch(), epoch0 + 1);
        assert_eq!(store.freshness_lag(), 0, "lag converges once published");

        // The old pin is untouched: same answer, bit for bit.
        let after = searcher.top_k(0, 5).unwrap();
        assert_eq!(before.nodes(), after.nodes());
        for (a, b) in before.items.iter().zip(&after.items) {
            assert_eq!(a.proximity.to_bits(), b.proximity.to_bits());
        }

        // A fresh pin sees the new epoch and a different answer space.
        let fresh = store.pin();
        assert_eq!(fresh.update_epoch(), epoch0 + 1);
    }

    #[test]
    fn coalesced_apply_advances_by_batch_count() {
        let engine = DynamicIndex::new(small_index()).unwrap();
        let (mut writer, store) = EpochWriter::new(engine);
        let epoch0 = store.epoch();
        let b1 =
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 1, dst: 8, weight: 1.0 }]).unwrap();
        let b2 =
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 2, dst: 9, weight: 1.0 }]).unwrap();
        writer.apply_coalesced(&[b1, b2]).unwrap();
        assert_eq!(store.epoch(), epoch0 + 2);
        assert_eq!(writer.epoch(), epoch0 + 2);
    }
}
