//! Serving-tier observability: lock-free histograms and counters.
//!
//! Everything here is plain `AtomicU64`s recorded with `Relaxed`
//! stores — a worker finishing a query touches three counters and two
//! histogram buckets, no locks, no allocation — so the metrics path
//! adds nanoseconds, not microseconds, to request latency.
//! [`ServeMetrics::snapshot`] reads the counters without stopping the
//! world, so a snapshot taken mid-flight can be skewed by the handful
//! of operations in progress; that is the usual monitoring contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// 16 exact buckets for values 0..16, then 16 sub-buckets per power of
/// two ("octave"): relative quantile error is bounded at 1/16 ≈ 6%.
const SUB_BUCKETS: usize = 16;
/// Octaves 4..=63 cover every further `u64` value.
const BUCKETS: usize = SUB_BUCKETS + (64 - 4) * SUB_BUCKETS;

/// Maps a value to its bucket: exact below 16, then log-linear
/// (HDR-style — the octave from the leading bit, the sub-bucket from
/// the next four bits).
fn bucket_of(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros() as usize; // >= 4 here
    let sub = ((value >> (octave - 4)) & 0xF) as usize;
    SUB_BUCKETS + (octave - 4) * SUB_BUCKETS + sub
}

/// The largest value a bucket can hold — the quantile estimate, so
/// reported quantiles never *understate* the observed latency.
fn bucket_upper(bucket: usize) -> u64 {
    if bucket < SUB_BUCKETS {
        return bucket as u64;
    }
    let rest = bucket - SUB_BUCKETS;
    let octave = rest / SUB_BUCKETS + 4;
    let sub = (rest % SUB_BUCKETS) as u128;
    // The bucket spans [(16+sub) << (octave-4), (16+sub+1) << (octave-4));
    // computed in u128 because the top octave's edge is 2^64.
    let upper = ((16 + sub + 1) << (octave - 4)) - 1;
    upper.min(u64::MAX as u128) as u64
}

/// A fixed-size log-linear histogram of `u64` samples (nanoseconds,
/// epoch counts, batch sizes — anything non-negative). Recording is a
/// single `Relaxed` `fetch_add` per bucket; quantile error is bounded
/// at ~6% by the 16 sub-buckets per octave, and the exact maximum is
/// tracked separately so the tail is never overstated.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / count as f64
    }

    /// The exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The estimated `q`-quantile (`0.0 < q <= 1.0`): the upper edge of
    /// the bucket holding the `ceil(q·count)`-th smallest sample,
    /// clamped to the exact observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

/// Shared serving-tier metrics: counters plus four histograms. One
/// instance is shared by the [`crate::ServeLoop`] (request latency,
/// batches, shed) and the [`crate::EpochWriter`] (swap-install
/// latency); everything is lock-free to record.
#[derive(Debug)]
pub struct ServeMetrics {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed: AtomicU64,
    max_queue_depth: AtomicU64,
    /// Submit→response, nanoseconds (queue wait + service).
    latency: Histogram,
    /// Requests folded per drained batch.
    batch: Histogram,
    /// Acked epochs the serving snapshot was behind, per served query.
    freshness: Histogram,
    /// Snapshot clone + publish, nanoseconds, per epoch swap.
    swap: Histogram,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        ServeMetrics {
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            latency: Histogram::new(),
            batch: Histogram::new(),
            freshness: Histogram::new(),
            swap: Histogram::new(),
        }
    }

    pub(crate) fn record_submitted(&self, queue_depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(queue_depth as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize) {
        self.batch.record(size as u64);
    }

    pub(crate) fn record_done(&self, latency: Duration, freshness_lag: u64, ok: bool) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record_duration(latency);
        self.freshness.record(freshness_lag);
    }

    pub(crate) fn record_swap(&self, install: Duration) {
        self.swap.record_duration(install);
    }

    /// The request-latency histogram (submit→response, nanoseconds).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// The per-query freshness-lag histogram (acked epochs behind).
    pub fn freshness(&self) -> &Histogram {
        &self.freshness
    }

    /// The swap-install latency histogram (nanoseconds per publish).
    pub fn swap(&self) -> &Histogram {
        &self.swap
    }

    /// A point-in-time summary of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let to_ms = |nanos: u64| nanos as f64 / 1e6;
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            latency_p50_ms: to_ms(self.latency.quantile(0.50)),
            latency_p99_ms: to_ms(self.latency.quantile(0.99)),
            latency_p999_ms: to_ms(self.latency.quantile(0.999)),
            latency_mean_ms: self.latency.mean() / 1e6,
            latency_max_ms: to_ms(self.latency.max()),
            mean_batch: self.batch.mean(),
            freshness_lag_p50: self.freshness.quantile(0.50),
            freshness_lag_max: self.freshness.max(),
            freshness_lag_mean: self.freshness.mean(),
            swaps: self.swap.count(),
            swap_p50_ms: to_ms(self.swap.quantile(0.50)),
            swap_max_ms: to_ms(self.swap.max()),
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

/// A point-in-time summary of [`ServeMetrics`] — plain data, cheap to
/// copy around, print, or serialise by hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests offered (accepted + shed).
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with a typed per-query error.
    pub failed: u64,
    /// Requests rejected by admission control.
    pub shed: u64,
    /// Largest queue depth observed at submit time.
    pub max_queue_depth: u64,
    /// Request latency quantiles, milliseconds (submit→response).
    pub latency_p50_ms: f64,
    /// 99th percentile request latency, milliseconds.
    pub latency_p99_ms: f64,
    /// 99.9th percentile request latency, milliseconds.
    pub latency_p999_ms: f64,
    /// Mean request latency, milliseconds.
    pub latency_mean_ms: f64,
    /// Exact worst request latency, milliseconds.
    pub latency_max_ms: f64,
    /// Mean requests folded per drained batch.
    pub mean_batch: f64,
    /// Median per-query freshness lag (acked epochs behind).
    pub freshness_lag_p50: u64,
    /// Worst per-query freshness lag observed.
    pub freshness_lag_max: u64,
    /// Mean per-query freshness lag.
    pub freshness_lag_mean: f64,
    /// Number of epoch swaps published.
    pub swaps: u64,
    /// Median swap-install (snapshot clone + publish) latency, ms.
    pub swap_p50_ms: f64,
    /// Worst swap-install latency, milliseconds.
    pub swap_max_ms: f64,
}

impl MetricsSnapshot {
    /// Fraction of offered requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.shed as f64 / self.submitted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_roundtrip() {
        for v in [0u64, 1, 15, 16, 17, 100, 1_000, 123_456, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            assert!(bucket_upper(b) >= v, "upper({b}) = {} < {v}", bucket_upper(b));
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "value {v} not above previous bucket");
            }
        }
    }

    #[test]
    fn bucket_error_is_bounded() {
        // The upper edge overestimates by at most one sub-bucket width:
        // 1/16 of the value's octave.
        for v in [20u64, 999, 5_000, 1_000_000, 123_456_789] {
            let upper = bucket_upper(bucket_of(v));
            assert!(upper as f64 <= v as f64 * (1.0 + 1.0 / 16.0) + 1.0, "{v} -> {upper}");
        }
    }

    #[test]
    fn quantiles_match_exact_on_small_values() {
        let h = Histogram::new();
        for v in 0..10 {
            h.record(v); // values 0..16 are exact buckets
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(1.0), 9);
        assert_eq!(h.max(), 9);
        assert!((h.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let h = Histogram::new();
        h.record(1_000_003);
        assert_eq!(h.quantile(0.99), 1_000_003);
        assert_eq!(h.quantile(0.001), 1_000_003);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_shed_rate() {
        let m = ServeMetrics::new();
        for _ in 0..8 {
            m.record_submitted(1);
        }
        m.record_shed();
        m.record_shed();
        let s = m.snapshot();
        assert_eq!(s.submitted, 8);
        assert_eq!(s.shed, 2);
        assert!((s.shed_rate() - 0.25).abs() < 1e-12);
    }
}
