//! Bounded lock-free MPMC queue — the serving tier's request channel
//! *and* its admission controller.
//!
//! This is the classic Vyukov array queue: a power-of-two ring of
//! slots, each carrying a sequence number that encodes whose turn the
//! slot is (producer round k writes when `seq == pos`, consumer round k
//! reads when `seq == pos + 1`). Producers and consumers claim
//! positions with a CAS on their respective cursors and then touch only
//! their claimed slot, so contended submits never serialise behind a
//! lock — and, critically for a serving loop, a descheduled producer
//! can only delay *its own* slot's consumer, not close the queue.
//!
//! The bound doubles as admission control: [`MpmcQueue::push`] on a
//! full ring fails immediately, handing the item back — the caller
//! (see [`crate::ServeLoop::submit`]) turns that into a typed
//! [`crate::ServeError::Overloaded`] instead of unbounded queueing
//! latency.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One ring slot. `sequence` is the turn indicator; `value` is only
/// read/written by the thread that won the CAS for this slot's
/// position, which is what makes the `UnsafeCell` sound.
struct Slot<T> {
    sequence: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded lock-free multi-producer multi-consumer FIFO queue.
///
/// Capacity is rounded up to the next power of two (and at least 2);
/// [`capacity`](Self::capacity) reports the actual bound.
pub struct MpmcQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue_pos: AtomicUsize,
    dequeue_pos: AtomicUsize,
}

// SAFETY: the sequence-number protocol hands each slot to exactly one
// thread at a time (the producer or consumer that CAS-claimed its
// position), so values of any `Send` type can cross threads through
// the ring; no `&T` is ever shared between threads.
unsafe impl<T: Send> Send for MpmcQueue<T> {}
unsafe impl<T: Send> Sync for MpmcQueue<T> {}

impl<T> MpmcQueue<T> {
    /// Creates a queue holding at most `capacity` items (rounded up to
    /// a power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Box<[Slot<T>]> = (0..cap)
            .map(|i| Slot {
                sequence: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        MpmcQueue {
            slots,
            mask: cap - 1,
            enqueue_pos: AtomicUsize::new(0),
            dequeue_pos: AtomicUsize::new(0),
        }
    }

    /// The admission bound: how many items the queue holds when full.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Enqueues `item`, or hands it back if the queue is full. Lock-free:
    /// a failed CAS retries against the advanced cursor, never blocks.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let turn = seq.wrapping_sub(pos) as isize;
            if turn == 0 {
                // Our turn: claim the position, then we own the slot.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` grants
                        // exclusive write access to this slot until the
                        // Release store below publishes it to consumers.
                        unsafe { (*slot.value.get()).write(item) };
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if turn < 0 {
                // The slot still holds the item from one lap ago: full.
                return Err(item);
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<T> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let turn = seq.wrapping_sub(pos.wrapping_add(1)) as isize;
            if turn == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: winning the CAS for `pos` grants
                        // exclusive read access to the slot; the Acquire
                        // load of `sequence` above synchronised with the
                        // producer's Release store, so the value is
                        // fully written.
                        let item = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.sequence
                            .store(pos.wrapping_add(self.mask).wrapping_add(1), Ordering::Release);
                        return Some(item);
                    }
                    Err(current) => pos = current,
                }
            } else if turn < 0 {
                return None;
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued items (the cursors are read
    /// independently, so concurrent pushes/pops can skew this by the
    /// number of in-flight operations — fine for gauges and shed
    /// decisions, not a synchronisation primitive).
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        enq.wrapping_sub(deq).min(self.capacity())
    }

    /// True when [`len`](Self::len) reads zero (same approximation).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for MpmcQueue<T> {
    fn drop(&mut self) {
        // Slots own their items only between a push and the matching
        // pop; drain so in-flight items are dropped exactly once.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = MpmcQueue::with_capacity(4);
        assert_eq!(q.capacity(), 4);
        assert!(q.is_empty());
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert_eq!(q.push(99), Err(99), "full queue rejects");
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(MpmcQueue::<u8>::with_capacity(0).capacity(), 2);
        assert_eq!(MpmcQueue::<u8>::with_capacity(3).capacity(), 4);
        assert_eq!(MpmcQueue::<u8>::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = MpmcQueue::with_capacity(2);
        for lap in 0u64..1000 {
            q.push(lap).unwrap();
            assert_eq!(q.pop(), Some(lap));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_producers_consumers_lose_nothing() {
        const PER_PRODUCER: u64 = 2000;
        const PRODUCERS: u64 = 3;
        let q = Arc::new(MpmcQueue::with_capacity(16));
        let sum = Arc::new(AtomicU64::new(0));
        let popped = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut v = p * PER_PRODUCER + i;
                    loop {
                        match q.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let q = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            let popped = Arc::clone(&popped);
            handles.push(std::thread::spawn(move || loop {
                if let Some(v) = q.pop() {
                    sum.fetch_add(v, Ordering::Relaxed);
                    popped.fetch_add(1, Ordering::Relaxed);
                } else if popped.load(Ordering::Relaxed) == PRODUCERS * PER_PRODUCER {
                    break;
                } else {
                    std::thread::yield_now();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(popped.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2, "every item seen exactly once");
    }

    #[test]
    fn drop_releases_inflight_items() {
        // Arc strong counts witness the drops.
        let payload = Arc::new(());
        {
            let q = MpmcQueue::with_capacity(8);
            for _ in 0..5 {
                q.push(Arc::clone(&payload)).unwrap();
            }
            assert_eq!(Arc::strong_count(&payload), 6);
        }
        assert_eq!(Arc::strong_count(&payload), 1);
    }
}
