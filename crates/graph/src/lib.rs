//! # kdash-graph
//!
//! Directed, weighted graph substrate for the K-dash reproduction of
//! *Fujiwara et al., "Fast and Exact Top-k Search for Random Walk with
//! Restart", PVLDB 2012*.
//!
//! The central type is [`CsrGraph`], an immutable compressed-sparse-row
//! adjacency structure storing out-edges. Everything the paper needs from a
//! graph lives here:
//!
//! * [`GraphBuilder`] — incremental construction with duplicate-edge merging,
//! * [`EdgeEdit`] / [`CsrGraph::apply_edits`] — validated edge-level
//!   mutations of a frozen graph (the dynamic-update entry point),
//! * [`bfs::BfsTree`] — the breadth-first layer structure used by the K-dash
//!   tree estimator (§4.3 of the paper),
//! * [`Permutation`] — node reorderings used by the sparse-inverse
//!   precomputation (§4.2.2),
//! * [`components`] — weak connectivity, largest-component extraction,
//! * [`io`] — plain-text edge-list parsing and serialisation.
//!
//! The transition matrix `A` itself (column-normalised adjacency) is built in
//! the `kdash-sparse` crate on top of this one.
//!
//! ## Example
//!
//! ```
//! use kdash_graph::{CsrGraph, GraphBuilder};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 1.0);
//! b.add_edge(1, 2, 2.0);
//! b.add_edge(2, 3, 1.0);
//! b.add_edge(3, 0, 1.0);
//! let g: CsrGraph = b.build().unwrap();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 4);
//! assert_eq!(g.out_degree(1), 1);
//! ```

pub mod bfs;
pub mod builder;
pub mod components;
pub mod csr;
pub mod edits;
pub mod epoch;
pub mod io;
pub mod permute;

pub use bfs::{BfsScratch, BfsTree};
pub use edits::EdgeEdit;
pub use epoch::EpochStamps;
pub use builder::{GraphBuilder, MergePolicy};
pub use csr::CsrGraph;
pub use permute::Permutation;

/// Node identifier. Graphs in the paper's evaluation have at most ~265 k
/// nodes; `u32` halves index memory versus `usize` on 64-bit targets, which
/// matters because the sparse triangular inverses dominate the footprint.
pub type NodeId = u32;

/// Errors produced by graph construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint was `>= num_nodes`.
    NodeOutOfBounds { node: NodeId, num_nodes: usize },
    /// A duplicate edge was found under [`MergePolicy::Error`], or an
    /// [`EdgeEdit::Insert`] targeted an edge that already exists.
    DuplicateEdge { src: NodeId, dst: NodeId },
    /// An [`EdgeEdit::Delete`] or [`EdgeEdit::Reweight`] referenced an
    /// edge the graph does not contain.
    EdgeNotFound { src: NodeId, dst: NodeId },
    /// An edge weight was non-finite or not strictly positive.
    InvalidWeight { src: NodeId, dst: NodeId, weight: f64 },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation(String),
    /// Text parse failure in [`io`].
    Parse { line: usize, message: String },
    /// Raw CSR arrays handed to [`CsrGraph::from_raw_parts`] were inconsistent.
    MalformedCsr(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds for graph with {num_nodes} nodes")
            }
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst}")
            }
            GraphError::EdgeNotFound { src, dst } => {
                write!(f, "edge {src} -> {dst} does not exist")
            }
            GraphError::InvalidWeight { src, dst, weight } => {
                write!(f, "edge {src} -> {dst} has invalid weight {weight}")
            }
            GraphError::InvalidPermutation(msg) => write!(f, "invalid permutation: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphError::MalformedCsr(msg) => write!(f, "malformed CSR arrays: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
