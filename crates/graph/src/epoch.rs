//! Generation-stamped visit marks.
//!
//! The workspace reuses one idiom in three places — the sparse triangular
//! solver's visit marks, the BFS scratch buffers and the scattered query
//! column: a dense array of per-slot *stamps* plus a current *generation*
//! counter. A slot is "marked" iff its stamp equals the current
//! generation, so invalidating every mark costs `O(1)` (bump the
//! generation) instead of `O(n)` (refill the array). The counter wrap is
//! handled by one full clear every `u32::MAX` generations.
//!
//! [`EpochStamps`] is that idiom, extracted so the rollover and
//! fresh-state corner cases live in exactly one place.

/// Dense visit stamps with `O(1)` whole-set invalidation.
///
/// A fresh instance has nothing marked; each [`advance`](Self::advance)
/// starts a new empty generation.
#[derive(Debug, Clone)]
pub struct EpochStamps {
    stamp: Vec<u32>,
    /// Current generation. Starts at 1 with all stamps 0, so a fresh
    /// instance reports nothing marked without any extra check on the
    /// hot read path.
    epoch: u32,
}

impl EpochStamps {
    /// Stamps for `n` slots, none marked.
    pub fn new(n: usize) -> Self {
        EpochStamps { stamp: vec![0; n], epoch: 1 }
    }

    /// Number of slots.
    #[inline]
    pub fn dim(&self) -> usize {
        self.stamp.len()
    }

    /// Starts a new generation: unmarks every slot in `O(1)` (amortised —
    /// stamps are cleared in full once every `u32::MAX` generations).
    pub fn advance(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks slot `i` in the current generation.
    #[inline]
    pub fn mark(&mut self, i: usize) {
        self.stamp[i] = self.epoch;
    }

    /// Whether slot `i` is marked in the current generation.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp[i] == self.epoch
    }

    /// The raw stamp array and the current generation, for kernels that
    /// test many slots in bulk (the SIMD gather compares four stamps per
    /// instruction): slot `i` is marked iff `raw().0[i] == raw().1` —
    /// exactly what [`is_marked`](Self::is_marked) computes one slot at a
    /// time.
    #[inline]
    pub fn raw(&self) -> (&[u32], u32) {
        (&self.stamp, self.epoch)
    }

    /// Test hook: forces the generation counter, to exercise the rollover
    /// path without four billion advances.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_instance_has_nothing_marked() {
        let stamps = EpochStamps::new(4);
        assert_eq!(stamps.dim(), 4);
        for i in 0..4 {
            assert!(!stamps.is_marked(i), "slot {i} marked on a fresh instance");
        }
    }

    #[test]
    fn mark_is_scoped_to_the_generation() {
        let mut stamps = EpochStamps::new(3);
        stamps.mark(1);
        assert!(stamps.is_marked(1));
        assert!(!stamps.is_marked(0));
        stamps.advance();
        assert!(!stamps.is_marked(1), "previous generation must be invalidated");
        stamps.mark(0);
        assert!(stamps.is_marked(0));
    }

    #[test]
    fn rollover_clears_stale_stamps() {
        let mut stamps = EpochStamps::new(3);
        stamps.force_epoch(u32::MAX);
        stamps.mark(2); // stale stamp holding u32::MAX
        stamps.advance(); // wraps: full clear, generation restarts at 1
        assert!(!stamps.is_marked(2), "stamp equal to u32::MAX survived the wrap");
        stamps.mark(0);
        assert!(stamps.is_marked(0));
    }
}
