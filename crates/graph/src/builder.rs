//! Incremental graph construction.

use crate::{CsrGraph, GraphError, NodeId, Result};

/// What to do when the same directed edge is added more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergePolicy {
    /// Sum the weights (natural for multigraph inputs such as co-authorship
    /// or email counts). This is the default.
    #[default]
    Sum,
    /// Keep the maximum weight.
    Max,
    /// Keep the weight seen last.
    Last,
    /// Treat duplicates as an error.
    Error,
}

/// Builder accumulating edges before freezing them into a [`CsrGraph`].
///
/// Construction is `O(n + m log d_max)`: edges are bucketed per source with a
/// counting pass, sorted within each row and merged according to the
/// [`MergePolicy`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
    merge: MergePolicy,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `num_nodes` nodes and no edges yet.
    pub fn new(num_nodes: usize) -> Self {
        Self::with_capacity(num_nodes, 0)
    }

    /// Like [`GraphBuilder::new`] but pre-allocates space for `edge_capacity`
    /// edges.
    pub fn with_capacity(num_nodes: usize, edge_capacity: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(edge_capacity),
            merge: MergePolicy::Sum,
            allow_self_loops: true,
        }
    }

    /// Sets the duplicate-edge policy (default [`MergePolicy::Sum`]).
    pub fn set_merge_policy(&mut self, policy: MergePolicy) -> &mut Self {
        self.merge = policy;
        self
    }

    /// If set to `false`, self-loops are silently dropped. Default `true`
    /// (the RWR formulation handles self-loops; the estimator's `c'` term
    /// depends on them).
    pub fn set_allow_self_loops(&mut self, allow: bool) -> &mut Self {
        self.allow_self_loops = allow;
        self
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edge insertions so far (before merging).
    pub fn num_pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Queues the directed edge `src -> dst`. Endpoint and weight validation
    /// happens in [`GraphBuilder::build`] so insertion stays branch-light.
    #[inline]
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) -> &mut Self {
        self.edges.push((src, dst, weight));
        self
    }

    /// Queues both `u -> v` and `v -> u` with the same weight.
    #[inline]
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId, weight: f64) -> &mut Self {
        self.edges.push((u, v, weight));
        if u != v {
            self.edges.push((v, u, weight));
        }
        self
    }

    /// Builds a builder pre-populated from an edge iterator.
    pub fn from_edges<I>(num_nodes: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let mut b = GraphBuilder::new(num_nodes);
        b.edges.extend(edges);
        b
    }

    /// Freezes the builder into an immutable [`CsrGraph`].
    pub fn build(&self) -> Result<CsrGraph> {
        let n = self.num_nodes;
        // Validate endpoints and weights first so error positions are stable.
        for &(s, d, w) in &self.edges {
            if (s as usize) >= n {
                return Err(GraphError::NodeOutOfBounds { node: s, num_nodes: n });
            }
            if (d as usize) >= n {
                return Err(GraphError::NodeOutOfBounds { node: d, num_nodes: n });
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(GraphError::InvalidWeight { src: s, dst: d, weight: w });
            }
        }

        // Counting sort by source.
        let mut counts = vec![0usize; n + 1];
        for &(s, d, _) in &self.edges {
            if self.allow_self_loops || s != d {
                counts[s as usize + 1] += 1;
            }
        }
        for v in 0..n {
            counts[v + 1] += counts[v];
        }
        let kept = counts[n];
        let mut bucketed: Vec<(NodeId, f64)> = vec![(0, 0.0); kept];
        let mut cursor = counts.clone();
        for &(s, d, w) in &self.edges {
            if self.allow_self_loops || s != d {
                bucketed[cursor[s as usize]] = (d, w);
                cursor[s as usize] += 1;
            }
        }

        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<NodeId> = Vec::with_capacity(kept);
        let mut weights: Vec<f64> = Vec::with_capacity(kept);
        for v in 0..n {
            let row = &mut bucketed[counts[v]..counts[v + 1]];
            // Stable sort: duplicates of the same target must merge in
            // insertion order, so that Sum accumulates both directions of an
            // undirected edge in the same order (bit-identical weights).
            row.sort_by_key(|&(t, _)| t);
            let mut i = 0;
            while i < row.len() {
                let target = row[i].0;
                let mut weight = row[i].1;
                let mut j = i + 1;
                while j < row.len() && row[j].0 == target {
                    match self.merge {
                        MergePolicy::Sum => weight += row[j].1,
                        MergePolicy::Max => weight = weight.max(row[j].1),
                        MergePolicy::Last => weight = row[j].1,
                        MergePolicy::Error => {
                            return Err(GraphError::DuplicateEdge { src: v as NodeId, dst: target })
                        }
                    }
                    j += 1;
                }
                col_idx.push(target);
                weights.push(weight);
                i = j;
            }
            row_ptr.push(col_idx.len());
        }

        CsrGraph::from_raw_parts(row_ptr, col_idx, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sum_is_default() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).add_edge(0, 1, 2.0).add_edge(0, 2, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn merge_policies() {
        for (policy, expect) in
            [(MergePolicy::Sum, 3.0), (MergePolicy::Max, 2.0), (MergePolicy::Last, 2.0)]
        {
            let mut b = GraphBuilder::new(2);
            b.set_merge_policy(policy);
            b.add_edge(0, 1, 1.0).add_edge(0, 1, 2.0);
            assert_eq!(b.build().unwrap().edge_weight(0, 1), Some(expect), "{policy:?}");
        }
        let mut b = GraphBuilder::new(2);
        b.set_merge_policy(MergePolicy::Error);
        b.add_edge(0, 1, 1.0).add_edge(0, 1, 2.0);
        assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { src: 0, dst: 1 })));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 7, 1.0);
        assert!(matches!(b.build(), Err(GraphError::NodeOutOfBounds { node: 7, .. })));

        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, f64::NAN);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight { .. })));

        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.0);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight { .. })));
    }

    #[test]
    fn self_loop_filtering() {
        let mut b = GraphBuilder::new(2);
        b.set_allow_self_loops(false);
        b.add_edge(0, 0, 1.0).add_edge(0, 1, 1.0);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 0));

        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 1.0).add_edge(0, 1, 1.0);
        assert_eq!(b.build().unwrap().num_edges(), 2);
    }

    #[test]
    fn undirected_insertion() {
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(0, 1, 2.0);
        b.add_undirected_edge(2, 2, 1.0); // self-loop added once
        let g = b.build().unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), Some(2.0));
        assert_eq!(g.edge_weight(2, 2), Some(1.0));
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn from_edges_roundtrip() {
        let edges = vec![(0, 1, 1.0), (1, 2, 1.5), (2, 0, 2.0)];
        let g = GraphBuilder::from_edges(3, edges.iter().copied()).build().unwrap();
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected, edges);
    }

    #[test]
    fn rows_are_sorted_and_deduped() {
        let mut b = GraphBuilder::new(4);
        for t in [3, 1, 2, 1, 3] {
            b.add_edge(0, t, 1.0);
        }
        let g = b.build().unwrap();
        assert_eq!(g.out_neighbors(0), &[1, 2, 3]);
        assert_eq!(g.out_weights(0), &[2.0, 1.0, 2.0]);
    }
}
