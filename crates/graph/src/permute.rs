//! Node relabelings (bijections on `0..n`).

use crate::{GraphError, NodeId, Result};

/// A bijection between "old" node ids and "new" node ids.
///
/// Reordering heuristics naturally produce the *sequence of old ids in new
/// order* (`old_of_new`); [`Permutation::from_new_order`] accepts exactly
/// that. The inverse direction (`new_of_old`) is materialised eagerly because
/// both lookups sit on the hot path of matrix permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    /// `old_of_new[new] = old`
    old_of_new: Vec<NodeId>,
    /// `new_of_old[old] = new`
    new_of_old: Vec<NodeId>,
}

impl Permutation {
    /// Identity permutation on `n` nodes.
    pub fn identity(n: usize) -> Self {
        let v: Vec<NodeId> = (0..n as NodeId).collect();
        Permutation { old_of_new: v.clone(), new_of_old: v }
    }

    /// Builds a permutation from `order`, where `order[new] = old`.
    /// Validates that `order` is a bijection on `0..order.len()`.
    pub fn from_new_order(order: Vec<NodeId>) -> Result<Self> {
        let n = order.len();
        let mut new_of_old = vec![NodeId::MAX; n];
        for (new, &old) in order.iter().enumerate() {
            if (old as usize) >= n {
                return Err(GraphError::InvalidPermutation(format!(
                    "id {old} out of range for permutation of length {n}"
                )));
            }
            if new_of_old[old as usize] != NodeId::MAX {
                return Err(GraphError::InvalidPermutation(format!("id {old} appears twice")));
            }
            new_of_old[old as usize] = new as NodeId;
        }
        Ok(Permutation { old_of_new: order, new_of_old })
    }

    /// Builds a permutation from the map `new_of_old[old] = new`.
    pub fn from_new_of_old(new_of_old: Vec<NodeId>) -> Result<Self> {
        let n = new_of_old.len();
        let mut old_of_new = vec![NodeId::MAX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            if (new as usize) >= n {
                return Err(GraphError::InvalidPermutation(format!(
                    "id {new} out of range for permutation of length {n}"
                )));
            }
            if old_of_new[new as usize] != NodeId::MAX {
                return Err(GraphError::InvalidPermutation(format!("image {new} appears twice")));
            }
            old_of_new[new as usize] = old as NodeId;
        }
        Ok(Permutation { old_of_new, new_of_old })
    }

    /// Number of elements permuted.
    #[inline]
    pub fn len(&self) -> usize {
        self.old_of_new.len()
    }

    /// True for the zero-length permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.old_of_new.is_empty()
    }

    /// New id of old node `old`.
    #[inline]
    pub fn new_of(&self, old: NodeId) -> NodeId {
        self.new_of_old[old as usize]
    }

    /// Old id of new node `new`.
    #[inline]
    pub fn old_of(&self, new: NodeId) -> NodeId {
        self.old_of_new[new as usize]
    }

    /// The inverse bijection.
    pub fn inverse(&self) -> Permutation {
        Permutation { old_of_new: self.new_of_old.clone(), new_of_old: self.old_of_new.clone() }
    }

    /// Composition: applies `self` first, then `after`
    /// (`result.new_of(v) == after.new_of(self.new_of(v))`).
    pub fn then(&self, after: &Permutation) -> Result<Permutation> {
        if self.len() != after.len() {
            return Err(GraphError::InvalidPermutation(format!(
                "cannot compose permutations of lengths {} and {}",
                self.len(),
                after.len()
            )));
        }
        let new_of_old: Vec<NodeId> =
            self.new_of_old.iter().map(|&mid| after.new_of(mid)).collect();
        Permutation::from_new_of_old(new_of_old)
    }

    /// True if this is the identity.
    pub fn is_identity(&self) -> bool {
        self.old_of_new.iter().enumerate().all(|(i, &v)| i as NodeId == v)
    }

    /// Slice view of `old_of_new` (old ids in new order).
    pub fn order(&self) -> &[NodeId] {
        &self.old_of_new
    }

    /// Permutes a dense per-node vector from old indexing into new indexing.
    pub fn permute_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value vector length mismatch");
        self.old_of_new.iter().map(|&old| values[old as usize]).collect()
    }

    /// Inverse of [`permute_values`](Self::permute_values): takes a vector
    /// in new indexing back to old indexing.
    pub fn unpermute_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value vector length mismatch");
        self.new_of_old.iter().map(|&new| values[new as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        for v in 0..5 {
            assert_eq!(p.new_of(v), v);
            assert_eq!(p.old_of(v), v);
        }
    }

    #[test]
    fn from_new_order_and_inverse() {
        // new order: [2, 0, 1] — old 2 becomes new 0, etc.
        let p = Permutation::from_new_order(vec![2, 0, 1]).unwrap();
        assert_eq!(p.old_of(0), 2);
        assert_eq!(p.new_of(2), 0);
        assert_eq!(p.new_of(0), 1);
        let inv = p.inverse();
        for v in 0..3 {
            assert_eq!(inv.new_of(p.new_of(v)), p.new_of(inv.new_of(v)));
            assert_eq!(inv.old_of(p.old_of(v)), p.old_of(inv.old_of(v)));
            assert_eq!(p.old_of(p.new_of(v)), v);
        }
    }

    #[test]
    fn rejects_non_bijections() {
        assert!(Permutation::from_new_order(vec![0, 0]).is_err());
        assert!(Permutation::from_new_order(vec![0, 5]).is_err());
        assert!(Permutation::from_new_of_old(vec![1, 1]).is_err());
    }

    #[test]
    fn composition() {
        let p = Permutation::from_new_order(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_new_order(vec![2, 1, 0]).unwrap();
        let pq = p.then(&q).unwrap();
        for v in 0..3 {
            assert_eq!(pq.new_of(v), q.new_of(p.new_of(v)));
        }
        assert!(p.then(&p.inverse()).unwrap().is_identity());
    }

    #[test]
    fn permute_values_follows_new_order() {
        let p = Permutation::from_new_order(vec![2, 0, 1]).unwrap();
        let vals = vec![10, 20, 30];
        assert_eq!(p.permute_values(&vals), vec![30, 10, 20]);
    }

    #[test]
    fn unpermute_inverts_permute() {
        let p = Permutation::from_new_order(vec![2, 0, 1]).unwrap();
        let vals = vec![10, 20, 30];
        assert_eq!(p.unpermute_values(&p.permute_values(&vals)), vals);
        assert_eq!(p.permute_values(&p.unpermute_values(&vals)), vals);
        assert_eq!(p.unpermute_values(&vals), p.inverse().permute_values(&vals));
    }
}
