//! Connectivity utilities.

use crate::{CsrGraph, GraphBuilder, NodeId};

/// Labels of the weakly connected components (edge direction ignored).
/// Returns `(labels, component_count)`; labels are dense in `0..count`.
pub fn weakly_connected_components(graph: &CsrGraph) -> (Vec<u32>, usize) {
    let n = graph.num_nodes();
    let transpose = graph.transpose();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in 0..n as NodeId {
        if label[start as usize] != u32::MAX {
            continue;
        }
        label[start as usize] = count;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for &t in graph.out_neighbors(v).iter().chain(transpose.out_neighbors(v)) {
                if label[t as usize] == u32::MAX {
                    label[t as usize] = count;
                    stack.push(t);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// Extracts the largest weakly connected component.
/// Returns the component subgraph and the mapping `local id -> original id`.
pub fn largest_weak_component(graph: &CsrGraph) -> (CsrGraph, Vec<NodeId>) {
    let n = graph.num_nodes();
    if n == 0 {
        return (GraphBuilder::new(0).build().unwrap(), Vec::new());
    }
    let (labels, count) = weakly_connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .unwrap_or(0);
    let nodes: Vec<NodeId> =
        (0..n as NodeId).filter(|&v| labels[v as usize] == biggest).collect();
    graph.induced_subgraph(&nodes).expect("component nodes are valid and unique")
}

/// The set of nodes reachable from `root` following out-edges, in BFS order.
pub fn reachable_set(graph: &CsrGraph, root: NodeId) -> Vec<NodeId> {
    crate::BfsTree::new(graph, root).order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn two_components() {
        // component {0,1} and {2,3,4}
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(4, 3, 1.0);
        let g = b.build().unwrap();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn weak_connectivity_ignores_direction() {
        // 0 -> 1 <- 2 is weakly connected
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build().unwrap();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn largest_component_extraction() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0); // small component
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 4, 1.0);
        b.add_edge(4, 5, 1.0); // big component {2..5}
        let g = b.build().unwrap();
        let (sub, map) = largest_weak_component(&g);
        assert_eq!(sub.num_nodes(), 4);
        assert_eq!(map, vec![2, 3, 4, 5]);
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let g = GraphBuilder::new(3).build().unwrap();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        let (sub, map) = largest_weak_component(&g);
        assert_eq!(sub.num_nodes(), 1);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn reachable_set_directed() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(3, 0, 1.0);
        let g = b.build().unwrap();
        assert_eq!(reachable_set(&g, 0), vec![0, 1, 2]);
        assert_eq!(reachable_set(&g, 3), vec![3, 0, 1, 2]);
        assert_eq!(reachable_set(&g, 2), vec![2]);
    }
}
