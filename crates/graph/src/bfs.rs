//! Breadth-first search layers — the tree structure behind K-dash's
//! proximity estimation (§4.3 of the paper).
//!
//! The random walk moves along *out*-edges, so the search tree follows
//! out-edges from the query node: layer 0 is the root, layer `i` contains
//! the nodes exactly `i` hops downstream. Nodes that are not reachable have
//! RWR proximity exactly 0 and are reported with layer [`UNREACHABLE`].

use crate::{CsrGraph, EpochStamps, NodeId};
use std::collections::VecDeque;

/// Layer marker for nodes the BFS never reached.
pub const UNREACHABLE: u32 = u32::MAX;

/// Reusable BFS state: epoch-stamped `layer`/`parent`/`order` buffers that
/// amortise the three `O(n)` allocations (and `O(n)` re-fills) a fresh
/// [`BfsTree`] pays on every traversal.
///
/// A node is *reached by the current run* iff its visit stamp carries the
/// current generation ([`EpochStamps`]); `layer` and `parent` are only
/// meaningful on stamped nodes, so starting a new run is `O(1)` — bump
/// the generation — instead of `O(n)` — refill three vectors. The `order`
/// vector doubles as the FIFO frontier (a cursor walks it while new nodes
/// are appended), which also removes the `VecDeque`.
///
/// The query engine holds one of these per `Searcher`; for one-off
/// traversals [`BfsTree`] remains the convenient owner of its buffers.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    /// Reached marks for the current run.
    visited: EpochStamps,
    /// Hop distance, valid only where stamped.
    layer: Vec<u32>,
    /// BFS tree parent, valid only where stamped (roots are their own
    /// parents).
    parent: Vec<NodeId>,
    /// Visit order of the current run; also serves as the BFS queue.
    order: Vec<NodeId>,
}

impl BfsScratch {
    /// Scratch buffers for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            visited: EpochStamps::new(n),
            layer: vec![UNREACHABLE; n],
            parent: vec![NodeId::MAX; n],
            order: Vec::new(),
        }
    }

    /// Number of nodes the buffers are sized for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.visited.dim()
    }

    /// Runs BFS over out-edges from `root`, replacing the previous run.
    pub fn run(&mut self, graph: &CsrGraph, root: NodeId) {
        self.run_multi(graph, &[root]);
    }

    /// Multi-root BFS, mirroring [`BfsTree::new_multi`]: all roots form
    /// layer 0 (in the given order) and are their own parents. `roots`
    /// must be non-empty, in bounds, and duplicate-free.
    pub fn run_multi(&mut self, graph: &CsrGraph, roots: &[NodeId]) {
        let n = self.dim();
        assert_eq!(graph.num_nodes(), n, "graph does not match scratch dimension");
        assert!(!roots.is_empty(), "BFS needs at least one root");
        self.visited.advance();
        self.order.clear();
        for &root in roots {
            assert!((root as usize) < n, "BFS root {root} out of bounds for {n} nodes");
            assert!(!self.visited.is_marked(root as usize), "duplicate BFS root {root}");
            self.visited.mark(root as usize);
            self.layer[root as usize] = 0;
            self.parent[root as usize] = root;
            self.order.push(root);
        }
        let mut head = 0;
        while head < self.order.len() {
            let v = self.order[head];
            head += 1;
            let next_layer = self.layer[v as usize] + 1;
            for &t in graph.out_neighbors(v) {
                if !self.visited.is_marked(t as usize) {
                    self.visited.mark(t as usize);
                    self.layer[t as usize] = next_layer;
                    self.parent[t as usize] = v;
                    self.order.push(t);
                }
            }
        }
    }

    /// Nodes of the current run in visit order (roots first).
    #[inline]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of nodes the current run reached.
    #[inline]
    pub fn num_reachable(&self) -> usize {
        self.order.len()
    }

    /// Whether the current run reached `v`. `false` for every node before
    /// the first run.
    #[inline]
    pub fn is_reached(&self, v: NodeId) -> bool {
        self.visited.is_marked(v as usize)
    }

    /// Hop distance of `v` in the current run, or [`UNREACHABLE`].
    #[inline]
    pub fn layer(&self, v: NodeId) -> u32 {
        if self.is_reached(v) {
            self.layer[v as usize]
        } else {
            UNREACHABLE
        }
    }

    /// BFS tree parent of `v` in the current run (roots are their own
    /// parents), or [`NodeId::MAX`] if unreached.
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        if self.is_reached(v) {
            self.parent[v as usize]
        } else {
            NodeId::MAX
        }
    }

    /// Test hook: forces the internal epoch counter, to exercise the
    /// rollover path without four billion runs.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.visited.force_epoch(epoch);
    }
}

/// The result of a breadth-first traversal from a root node.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Root the traversal started from.
    pub root: NodeId,
    /// Nodes in visit order (root first). Length = number of reachable nodes.
    pub order: Vec<NodeId>,
    /// `layer[v]` = hop distance from the root, or [`UNREACHABLE`].
    pub layer: Vec<u32>,
    /// `parent[v]` = BFS tree parent, `parent[root] = root`,
    /// [`NodeId::MAX`] for unreachable nodes.
    pub parent: Vec<NodeId>,
}

impl BfsTree {
    /// Runs BFS over out-edges from `root`.
    pub fn new(graph: &CsrGraph, root: NodeId) -> Self {
        Self::new_multi(graph, &[root])
    }

    /// Runs BFS over out-edges from several roots simultaneously; all
    /// roots form layer 0 (in the given order) and are their own parents.
    /// The multi-source K-dash search (restart sets, Personalized PageRank
    /// style) builds its layer structure this way. `roots` must be
    /// non-empty and duplicate-free.
    pub fn new_multi(graph: &CsrGraph, roots: &[NodeId]) -> Self {
        let n = graph.num_nodes();
        assert!(!roots.is_empty(), "BFS needs at least one root");
        let mut layer = vec![UNREACHABLE; n];
        let mut parent = vec![NodeId::MAX; n];
        let mut order = Vec::with_capacity(n.min(1024));
        let mut queue = VecDeque::new();
        for &root in roots {
            assert!((root as usize) < n, "BFS root {root} out of bounds for {n} nodes");
            assert!(layer[root as usize] == UNREACHABLE, "duplicate BFS root {root}");
            layer[root as usize] = 0;
            parent[root as usize] = root;
            queue.push_back(root);
        }
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let next_layer = layer[v as usize] + 1;
            for &t in graph.out_neighbors(v) {
                if layer[t as usize] == UNREACHABLE {
                    layer[t as usize] = next_layer;
                    parent[t as usize] = v;
                    queue.push_back(t);
                }
            }
        }
        BfsTree { root: roots[0], order, layer, parent }
    }

    /// Number of nodes reachable from the root (including the root).
    #[inline]
    pub fn num_reachable(&self) -> usize {
        self.order.len()
    }

    /// Hop distance of `v` from the root, if reachable.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        let l = self.layer[v as usize];
        (l != UNREACHABLE).then_some(l)
    }

    /// The deepest populated layer index (0 for a lone root).
    pub fn depth(&self) -> u32 {
        self.order.iter().map(|&v| self.layer[v as usize]).max().unwrap_or(0)
    }

    /// Verifies the two invariants the K-dash estimator relies on:
    /// visit order is non-decreasing in layer, and every non-root reachable
    /// node has a parent exactly one layer above it (roots are their own
    /// parents at layer 0).
    pub fn check_invariants(&self, graph: &CsrGraph) -> bool {
        let mut prev = 0u32;
        for &v in &self.order {
            let l = self.layer[v as usize];
            if l < prev {
                return false;
            }
            prev = l;
            let p = self.parent[v as usize];
            if p == v {
                if l != 0 {
                    return false;
                }
            } else if p == NodeId::MAX
                || self.layer[p as usize] + 1 != l
                || !graph.has_edge(p, v)
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as NodeId, v as NodeId + 1, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn path_layers() {
        let g = path_graph(5);
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.layer, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.depth(), 4);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn unreachable_nodes_marked() {
        let g = path_graph(5);
        let t = BfsTree::new(&g, 2); // 0 and 1 are upstream, unreachable
        assert_eq!(t.num_reachable(), 3);
        assert_eq!(t.layer[0], UNREACHABLE);
        assert_eq!(t.layer[1], UNREACHABLE);
        assert_eq!(t.distance(0), None);
        assert_eq!(t.distance(4), Some(2));
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn directed_edges_only() {
        // 0 -> 1, 2 -> 1 : from 0 we cannot reach 2
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build().unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.num_reachable(), 2);
        assert_eq!(t.layer[2], UNREACHABLE);
    }

    #[test]
    fn diamond_parents() {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build().unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.layer, vec![0, 1, 1, 2]);
        assert_eq!(t.parent[0], 0);
        assert!(t.parent[3] == 1 || t.parent[3] == 2);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn lone_root() {
        let g = GraphBuilder::new(3).build().unwrap();
        let t = BfsTree::new(&g, 1);
        assert_eq!(t.order, vec![1]);
        assert_eq!(t.depth(), 0);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn multi_source_layers() {
        // path 0 -> 1 -> 2 -> 3 -> 4; roots {0, 3}.
        let g = path_graph(5);
        let t = BfsTree::new_multi(&g, &[0, 3]);
        assert_eq!(t.layer, vec![0, 1, 2, 0, 1]);
        assert_eq!(t.order, vec![0, 3, 1, 4, 2]);
        assert_eq!(t.parent[0], 0);
        assert_eq!(t.parent[3], 3);
        assert!(t.check_invariants(&g));
    }

    #[test]
    #[should_panic(expected = "duplicate BFS root")]
    fn duplicate_roots_rejected() {
        let g = path_graph(3);
        BfsTree::new_multi(&g, &[0, 0]);
    }

    #[test]
    fn scratch_matches_tree_across_reuse() {
        // One scratch, many runs (single- and multi-root, different
        // graphs of the same size): every run must agree with a fresh
        // BfsTree in order, layers and reachability.
        let diamond = {
            let mut b = GraphBuilder::new(6);
            for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
                b.add_edge(u, v, 1.0);
            }
            b.build().unwrap()
        };
        let path = path_graph(6);
        let mut scratch = BfsScratch::new(6);
        for (graph, roots) in [
            (&diamond, vec![0u32]),
            (&path, vec![2]),
            (&diamond, vec![5]),
            (&path, vec![0, 4]),
            (&diamond, vec![1, 2]),
        ] {
            scratch.run_multi(graph, &roots);
            let tree = BfsTree::new_multi(graph, &roots);
            assert_eq!(scratch.order(), &tree.order[..], "roots {roots:?}");
            assert_eq!(scratch.num_reachable(), tree.num_reachable());
            for v in 0..6u32 {
                assert_eq!(scratch.layer(v), tree.layer[v as usize], "layer of {v}");
                assert_eq!(scratch.is_reached(v), tree.layer[v as usize] != UNREACHABLE);
                if scratch.is_reached(v) {
                    assert_eq!(scratch.parent(v), tree.parent[v as usize], "parent of {v}");
                } else {
                    assert_eq!(scratch.parent(v), NodeId::MAX);
                }
            }
        }
    }

    #[test]
    fn fresh_scratch_reports_nothing_reached() {
        let scratch = BfsScratch::new(4);
        assert_eq!(scratch.num_reachable(), 0);
        for v in 0..4u32 {
            assert!(!scratch.is_reached(v), "node {v} reached before any run");
            assert_eq!(scratch.layer(v), UNREACHABLE);
            assert_eq!(scratch.parent(v), NodeId::MAX);
        }
    }

    #[test]
    fn scratch_epoch_rollover_is_clean() {
        // Run right before the wrap so stale stamps equal u32::MAX, the
        // worst case for the post-rollover comparison.
        let path = path_graph(5);
        let mut scratch = BfsScratch::new(5);
        scratch.force_epoch(u32::MAX - 1);
        scratch.run(&path, 0); // epoch becomes u32::MAX; everything reached
        assert_eq!(scratch.num_reachable(), 5);
        scratch.run(&path, 3); // wraps: stamps cleared, epoch restarts at 1
        assert_eq!(scratch.order(), &[3, 4]);
        for v in 0..3u32 {
            assert!(!scratch.is_reached(v), "stale stamp on {v} survived rollover");
            assert_eq!(scratch.layer(v), UNREACHABLE);
        }
        assert_eq!(scratch.layer(3), 0);
        assert_eq!(scratch.layer(4), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate BFS root")]
    fn scratch_rejects_duplicate_roots() {
        let g = path_graph(3);
        BfsScratch::new(3).run_multi(&g, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "does not match scratch dimension")]
    fn scratch_rejects_mismatched_graph() {
        let g = path_graph(3);
        BfsScratch::new(5).run(&g, 0);
    }

    #[test]
    #[should_panic(expected = "at least one root")]
    fn empty_roots_rejected() {
        let g = path_graph(3);
        BfsTree::new_multi(&g, &[]);
    }
}
