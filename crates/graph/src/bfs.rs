//! Breadth-first search layers — the tree structure behind K-dash's
//! proximity estimation (§4.3 of the paper).
//!
//! The random walk moves along *out*-edges, so the search tree follows
//! out-edges from the query node: layer 0 is the root, layer `i` contains
//! the nodes exactly `i` hops downstream. Nodes that are not reachable have
//! RWR proximity exactly 0 and are reported with layer [`UNREACHABLE`].
//!
//! Two drivers share the same order-as-queue idiom:
//!
//! * [`BfsTree`] runs an *eager* traversal to exhaustion and owns its
//!   buffers — the convenient one-off form, and the oracle the lazy driver
//!   is tested against.
//! * [`BfsScratch`] is the reusable, *lazy* form: [`begin`](BfsScratch::begin)
//!   seeds layer 0 and [`expand_next_layer`](BfsScratch::expand_next_layer)
//!   discovers exactly one further layer per call. A search that terminates
//!   early (K-dash's Lemma 2) simply stops calling it, and every layer it
//!   never asked for is never expanded — the traversal cost tracks the
//!   pruned visit count instead of the whole reachable set. Because layers
//!   are expanded whole and in order, the visit order, layers and parents
//!   are *identical* to the eager tree's at every prefix.

use crate::{CsrGraph, EpochStamps, NodeId};

/// Layer marker for nodes the BFS never reached.
pub const UNREACHABLE: u32 = u32::MAX;

/// Reusable *lazy* BFS state: epoch-stamped `layer`/`parent`/`order`
/// buffers that amortise the three `O(n)` allocations (and `O(n)` re-fills)
/// a fresh [`BfsTree`] pays on every traversal, plus the frontier cursors
/// that let layers be discovered one at a time, on demand.
///
/// A node is *discovered by the current run* iff its visit stamp carries
/// the current generation ([`EpochStamps`]); `layer` and `parent` are only
/// meaningful on stamped nodes, so starting a new run is `O(1)` — bump
/// the generation — instead of `O(n)` — refill three vectors. The `order`
/// vector doubles as the FIFO frontier (a cursor walks it while new nodes
/// are appended), the same idiom [`BfsTree::new_multi`] uses.
///
/// # Lazy protocol
///
/// [`begin`](Self::begin) / [`begin_multi`](Self::begin_multi) seed layer 0
/// (the roots) and discover nothing else. Each
/// [`expand_next_layer`](Self::expand_next_layer) call scans the out-edges
/// of the deepest discovered layer, appending the next layer to
/// [`order`](Self::order); once a call discovers nothing the run is
/// [`exhausted`](Self::is_exhausted). Consumers walk `order` with their own
/// cursor and ask for the next layer exactly when the cursor hits
/// [`num_discovered`](Self::num_discovered) — so a consumer that stops
/// early (K-dash's Lemma 2 termination) never pays for the layers it never
/// visited. [`run`](Self::run) / [`run_multi`](Self::run_multi) drain the
/// protocol to exhaustion and match [`BfsTree`] exactly.
///
/// The query engine holds one of these per `Searcher`; for one-off
/// traversals [`BfsTree`] remains the convenient owner of its buffers.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    /// Discovery marks for the current run.
    visited: EpochStamps,
    /// Hop distance, valid only where stamped.
    layer: Vec<u32>,
    /// BFS tree parent, valid only where stamped (roots are their own
    /// parents).
    parent: Vec<NodeId>,
    /// Discovery order of the current run; also serves as the BFS queue.
    order: Vec<NodeId>,
    /// Nodes in `order[..expand_head]` have had their out-edges scanned.
    expand_head: usize,
    /// Hop distance of the deepest fully-discovered layer.
    frontier_depth: u32,
    /// Set once an expansion discovers nothing: the run is complete.
    exhausted: bool,
}

impl BfsScratch {
    /// Scratch buffers for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            visited: EpochStamps::new(n),
            layer: vec![UNREACHABLE; n],
            parent: vec![NodeId::MAX; n],
            order: Vec::new(),
            expand_head: 0,
            frontier_depth: 0,
            exhausted: false,
        }
    }

    /// Number of nodes the buffers are sized for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.visited.dim()
    }

    /// Runs BFS over out-edges from `root` to exhaustion, replacing the
    /// previous run.
    pub fn run(&mut self, graph: &CsrGraph, root: NodeId) {
        self.run_multi(graph, &[root]);
    }

    /// Multi-root BFS to exhaustion, mirroring [`BfsTree::new_multi`]: all
    /// roots form layer 0 (in the given order) and are their own parents.
    /// `roots` must be non-empty, in bounds, and duplicate-free.
    pub fn run_multi(&mut self, graph: &CsrGraph, roots: &[NodeId]) {
        self.begin_multi(graph, roots);
        while self.expand_next_layer(graph) > 0 {}
    }

    /// Starts a new lazy run from `root`: layer 0 is seeded, nothing else
    /// is discovered yet.
    pub fn begin(&mut self, graph: &CsrGraph, root: NodeId) {
        self.begin_multi(graph, &[root]);
    }

    /// Starts a new lazy multi-root run: all `roots` form layer 0 (in the
    /// given order) and are their own parents; no out-edge has been scanned
    /// yet. `roots` must be non-empty, in bounds, and duplicate-free.
    pub fn begin_multi(&mut self, graph: &CsrGraph, roots: &[NodeId]) {
        let n = self.dim();
        assert_eq!(graph.num_nodes(), n, "graph does not match scratch dimension");
        assert!(!roots.is_empty(), "BFS needs at least one root");
        self.visited.advance();
        self.order.clear();
        self.expand_head = 0;
        self.frontier_depth = 0;
        self.exhausted = false;
        for &root in roots {
            assert!((root as usize) < n, "BFS root {root} out of bounds for {n} nodes");
            assert!(!self.visited.is_marked(root as usize), "duplicate BFS root {root}");
            self.visited.mark(root as usize);
            self.layer[root as usize] = 0;
            self.parent[root as usize] = root;
            self.order.push(root);
        }
    }

    /// Scans the out-edges of the deepest discovered layer, appending every
    /// newly discovered node (the next layer) to [`order`](Self::order) in
    /// first-discovery order. Returns the number of nodes discovered; `0`
    /// means the run is exhausted (and further calls are free no-ops).
    ///
    /// Expanding whole layers in order reproduces the eager node-at-a-time
    /// queue exactly: the nodes scanned here are precisely the queue window
    /// the eager driver would pop next, in the same sequence, so `order`,
    /// `layer` and `parent` agree with [`BfsTree`] at every prefix.
    ///
    /// `graph` must be the graph the run [`begin`](Self::begin)-ed on.
    pub fn expand_next_layer(&mut self, graph: &CsrGraph) -> usize {
        debug_assert_eq!(graph.num_nodes(), self.dim(), "graph changed mid-run");
        if self.exhausted {
            return 0;
        }
        let layer_end = self.order.len();
        let next_layer = self.frontier_depth + 1;
        while self.expand_head < layer_end {
            let v = self.order[self.expand_head];
            self.expand_head += 1;
            for &t in graph.out_neighbors(v) {
                if !self.visited.is_marked(t as usize) {
                    self.visited.mark(t as usize);
                    self.layer[t as usize] = next_layer;
                    self.parent[t as usize] = v;
                    self.order.push(t);
                }
            }
        }
        let discovered = self.order.len() - layer_end;
        if discovered == 0 {
            self.exhausted = true;
        } else {
            self.frontier_depth = next_layer;
        }
        discovered
    }

    /// Nodes of the current run in discovery order (roots first). During a
    /// lazy run this holds every *fully discovered* layer so far.
    #[inline]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of nodes discovered so far. Once the run is
    /// [`exhausted`](Self::is_exhausted) this is the exact reachable count;
    /// before that it is a lower bound (layers not yet expanded are
    /// missing).
    #[inline]
    pub fn num_discovered(&self) -> usize {
        self.order.len()
    }

    /// Number of nodes whose out-edges have been scanned so far — the work
    /// a lazy consumer actually paid for. At exhaustion this equals
    /// [`num_discovered`](Self::num_discovered); a run abandoned early has
    /// scanned strictly fewer nodes than it discovered.
    #[inline]
    pub fn num_expanded(&self) -> usize {
        self.expand_head
    }

    /// Whether expansion has run out of new nodes — i.e. `order` now holds
    /// the entire reachable set.
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Hop distance of the deepest fully-discovered layer so far.
    #[inline]
    pub fn frontier_depth(&self) -> u32 {
        self.frontier_depth
    }

    /// Number of nodes the current run reached. Meaningful once the run is
    /// [`exhausted`](Self::is_exhausted) (always true after
    /// [`run`](Self::run)/[`run_multi`](Self::run_multi)); mid-protocol it
    /// reports the discovered-so-far count, same as
    /// [`num_discovered`](Self::num_discovered).
    #[inline]
    pub fn num_reachable(&self) -> usize {
        self.order.len()
    }

    /// Whether the current run reached `v`. `false` for every node before
    /// the first run.
    #[inline]
    pub fn is_reached(&self, v: NodeId) -> bool {
        self.visited.is_marked(v as usize)
    }

    /// Hop distance of `v` in the current run, or [`UNREACHABLE`].
    #[inline]
    pub fn layer(&self, v: NodeId) -> u32 {
        if self.is_reached(v) {
            self.layer[v as usize]
        } else {
            UNREACHABLE
        }
    }

    /// BFS tree parent of `v` in the current run (roots are their own
    /// parents), or [`NodeId::MAX`] if unreached.
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        if self.is_reached(v) {
            self.parent[v as usize]
        } else {
            NodeId::MAX
        }
    }

    /// Test hook: forces the internal epoch counter, to exercise the
    /// rollover path without four billion runs.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.visited.force_epoch(epoch);
    }
}

/// The result of a breadth-first traversal from a root node.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Root the traversal started from.
    pub root: NodeId,
    /// Nodes in visit order (root first). Length = number of reachable nodes.
    pub order: Vec<NodeId>,
    /// `layer[v]` = hop distance from the root, or [`UNREACHABLE`].
    pub layer: Vec<u32>,
    /// `parent[v]` = BFS tree parent, `parent[root] = root`,
    /// [`NodeId::MAX`] for unreachable nodes.
    pub parent: Vec<NodeId>,
}

impl BfsTree {
    /// Runs BFS over out-edges from `root`.
    pub fn new(graph: &CsrGraph, root: NodeId) -> Self {
        Self::new_multi(graph, &[root])
    }

    /// Runs BFS over out-edges from several roots simultaneously; all
    /// roots form layer 0 (in the given order) and are their own parents.
    /// The multi-source K-dash search (restart sets, Personalized PageRank
    /// style) builds its layer structure this way. `roots` must be
    /// non-empty and duplicate-free.
    pub fn new_multi(graph: &CsrGraph, roots: &[NodeId]) -> Self {
        // Order-as-queue: `order` itself is the FIFO frontier — a head
        // cursor walks it while newly discovered nodes are appended. Same
        // idiom as `BfsScratch`, so the two drivers stay line-for-line
        // comparable (the eager tree is the lazy driver's test oracle).
        let n = graph.num_nodes();
        assert!(!roots.is_empty(), "BFS needs at least one root");
        let mut layer = vec![UNREACHABLE; n];
        let mut parent = vec![NodeId::MAX; n];
        let mut order = Vec::with_capacity(n.min(1024));
        for &root in roots {
            assert!((root as usize) < n, "BFS root {root} out of bounds for {n} nodes");
            assert!(layer[root as usize] == UNREACHABLE, "duplicate BFS root {root}");
            layer[root as usize] = 0;
            parent[root as usize] = root;
            order.push(root);
        }
        let mut head = 0;
        while head < order.len() {
            let v = order[head];
            head += 1;
            let next_layer = layer[v as usize] + 1;
            for &t in graph.out_neighbors(v) {
                if layer[t as usize] == UNREACHABLE {
                    layer[t as usize] = next_layer;
                    parent[t as usize] = v;
                    order.push(t);
                }
            }
        }
        BfsTree { root: roots[0], order, layer, parent }
    }

    /// Number of nodes reachable from the root (including the root).
    #[inline]
    pub fn num_reachable(&self) -> usize {
        self.order.len()
    }

    /// Hop distance of `v` from the root, if reachable.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        let l = self.layer[v as usize];
        (l != UNREACHABLE).then_some(l)
    }

    /// The deepest populated layer index (0 for a lone root).
    pub fn depth(&self) -> u32 {
        self.order.iter().map(|&v| self.layer[v as usize]).max().unwrap_or(0)
    }

    /// Verifies the two invariants the K-dash estimator relies on:
    /// visit order is non-decreasing in layer, and every non-root reachable
    /// node has a parent exactly one layer above it (roots are their own
    /// parents at layer 0).
    pub fn check_invariants(&self, graph: &CsrGraph) -> bool {
        let mut prev = 0u32;
        for &v in &self.order {
            let l = self.layer[v as usize];
            if l < prev {
                return false;
            }
            prev = l;
            let p = self.parent[v as usize];
            if p == v {
                if l != 0 {
                    return false;
                }
            } else if p == NodeId::MAX
                || self.layer[p as usize] + 1 != l
                || !graph.has_edge(p, v)
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as NodeId, v as NodeId + 1, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn path_layers() {
        let g = path_graph(5);
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.layer, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.depth(), 4);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn unreachable_nodes_marked() {
        let g = path_graph(5);
        let t = BfsTree::new(&g, 2); // 0 and 1 are upstream, unreachable
        assert_eq!(t.num_reachable(), 3);
        assert_eq!(t.layer[0], UNREACHABLE);
        assert_eq!(t.layer[1], UNREACHABLE);
        assert_eq!(t.distance(0), None);
        assert_eq!(t.distance(4), Some(2));
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn directed_edges_only() {
        // 0 -> 1, 2 -> 1 : from 0 we cannot reach 2
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build().unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.num_reachable(), 2);
        assert_eq!(t.layer[2], UNREACHABLE);
    }

    #[test]
    fn diamond_parents() {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build().unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.layer, vec![0, 1, 1, 2]);
        assert_eq!(t.parent[0], 0);
        assert!(t.parent[3] == 1 || t.parent[3] == 2);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn lone_root() {
        let g = GraphBuilder::new(3).build().unwrap();
        let t = BfsTree::new(&g, 1);
        assert_eq!(t.order, vec![1]);
        assert_eq!(t.depth(), 0);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn multi_source_layers() {
        // path 0 -> 1 -> 2 -> 3 -> 4; roots {0, 3}.
        let g = path_graph(5);
        let t = BfsTree::new_multi(&g, &[0, 3]);
        assert_eq!(t.layer, vec![0, 1, 2, 0, 1]);
        assert_eq!(t.order, vec![0, 3, 1, 4, 2]);
        assert_eq!(t.parent[0], 0);
        assert_eq!(t.parent[3], 3);
        assert!(t.check_invariants(&g));
    }

    #[test]
    #[should_panic(expected = "duplicate BFS root")]
    fn duplicate_roots_rejected() {
        let g = path_graph(3);
        BfsTree::new_multi(&g, &[0, 0]);
    }

    #[test]
    fn scratch_matches_tree_across_reuse() {
        // One scratch, many runs (single- and multi-root, different
        // graphs of the same size): every run must agree with a fresh
        // BfsTree in order, layers and reachability.
        let diamond = {
            let mut b = GraphBuilder::new(6);
            for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
                b.add_edge(u, v, 1.0);
            }
            b.build().unwrap()
        };
        let path = path_graph(6);
        let mut scratch = BfsScratch::new(6);
        for (graph, roots) in [
            (&diamond, vec![0u32]),
            (&path, vec![2]),
            (&diamond, vec![5]),
            (&path, vec![0, 4]),
            (&diamond, vec![1, 2]),
        ] {
            scratch.run_multi(graph, &roots);
            let tree = BfsTree::new_multi(graph, &roots);
            assert_eq!(scratch.order(), &tree.order[..], "roots {roots:?}");
            assert_eq!(scratch.num_reachable(), tree.num_reachable());
            for v in 0..6u32 {
                assert_eq!(scratch.layer(v), tree.layer[v as usize], "layer of {v}");
                assert_eq!(scratch.is_reached(v), tree.layer[v as usize] != UNREACHABLE);
                if scratch.is_reached(v) {
                    assert_eq!(scratch.parent(v), tree.parent[v as usize], "parent of {v}");
                } else {
                    assert_eq!(scratch.parent(v), NodeId::MAX);
                }
            }
        }
    }

    #[test]
    fn fresh_scratch_reports_nothing_reached() {
        let scratch = BfsScratch::new(4);
        assert_eq!(scratch.num_reachable(), 0);
        for v in 0..4u32 {
            assert!(!scratch.is_reached(v), "node {v} reached before any run");
            assert_eq!(scratch.layer(v), UNREACHABLE);
            assert_eq!(scratch.parent(v), NodeId::MAX);
        }
    }

    #[test]
    fn scratch_epoch_rollover_is_clean() {
        // Run right before the wrap so stale stamps equal u32::MAX, the
        // worst case for the post-rollover comparison.
        let path = path_graph(5);
        let mut scratch = BfsScratch::new(5);
        scratch.force_epoch(u32::MAX - 1);
        scratch.run(&path, 0); // epoch becomes u32::MAX; everything reached
        assert_eq!(scratch.num_reachable(), 5);
        scratch.run(&path, 3); // wraps: stamps cleared, epoch restarts at 1
        assert_eq!(scratch.order(), &[3, 4]);
        for v in 0..3u32 {
            assert!(!scratch.is_reached(v), "stale stamp on {v} survived rollover");
            assert_eq!(scratch.layer(v), UNREACHABLE);
        }
        assert_eq!(scratch.layer(3), 0);
        assert_eq!(scratch.layer(4), 1);
    }

    #[test]
    fn lazy_layers_match_eager_tree_at_every_prefix() {
        // Drive the lazy protocol layer by layer; after each expansion the
        // discovered prefix must equal the eager tree's order restricted to
        // the same layers, with identical layers and parents.
        let diamond = {
            let mut b = GraphBuilder::new(8);
            for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (2, 6)] {
                b.add_edge(u, v, 1.0);
            }
            b.build().unwrap()
        };
        for roots in [vec![0u32], vec![2], vec![0, 4]] {
            let tree = BfsTree::new_multi(&diamond, &roots);
            let mut scratch = BfsScratch::new(8);
            scratch.begin_multi(&diamond, &roots);
            assert_eq!(scratch.num_discovered(), roots.len());
            assert_eq!(scratch.num_expanded(), 0, "begin must not scan any edges");
            loop {
                let seen = scratch.num_discovered();
                assert_eq!(scratch.order(), &tree.order[..seen], "roots {roots:?}");
                for &v in scratch.order() {
                    assert_eq!(scratch.layer(v), tree.layer[v as usize]);
                    assert_eq!(scratch.parent(v), tree.parent[v as usize]);
                }
                if scratch.expand_next_layer(&diamond) == 0 {
                    break;
                }
            }
            assert!(scratch.is_exhausted());
            assert_eq!(scratch.num_discovered(), tree.num_reachable());
            assert_eq!(
                scratch.num_expanded(),
                tree.num_reachable(),
                "a drained run scans every reachable node"
            );
            assert_eq!(scratch.frontier_depth(), tree.depth());
            // Exhausted runs answer further expansion requests for free.
            assert_eq!(scratch.expand_next_layer(&diamond), 0);
        }
    }

    #[test]
    fn abandoned_lazy_run_scans_strictly_less() {
        // Stop after discovering layer 1 of a 5-layer path: layers 2..4
        // must never be expanded, and the next begin() resets cleanly.
        let path = path_graph(6);
        let mut scratch = BfsScratch::new(6);
        scratch.begin(&path, 0);
        assert_eq!(scratch.expand_next_layer(&path), 1); // discovers node 1
        assert_eq!(scratch.num_discovered(), 2);
        assert_eq!(scratch.num_expanded(), 1, "only the root was scanned");
        assert!(!scratch.is_exhausted());
        assert!(!scratch.is_reached(2), "layer 2 must not be discovered yet");
        // Abandon and start over from the other end.
        scratch.begin(&path, 4);
        assert_eq!(scratch.order(), &[4]);
        scratch.run(&path, 4); // also exercise restart-into-drain
        assert_eq!(scratch.order(), &[4, 5]);
        assert!(scratch.is_exhausted());
    }

    #[test]
    fn run_multi_equals_lazy_drain() {
        let g = {
            let mut b = GraphBuilder::new(7);
            for (u, v) in [(0, 1), (1, 2), (0, 3), (3, 4), (4, 1), (2, 5)] {
                b.add_edge(u, v, 1.0);
            }
            b.build().unwrap()
        };
        let mut eager = BfsScratch::new(7);
        eager.run_multi(&g, &[0, 4]);
        let mut lazy = BfsScratch::new(7);
        lazy.begin_multi(&g, &[0, 4]);
        while lazy.expand_next_layer(&g) > 0 {}
        assert_eq!(eager.order(), lazy.order());
        for v in 0..7u32 {
            assert_eq!(eager.layer(v), lazy.layer(v));
            assert_eq!(eager.parent(v), lazy.parent(v));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate BFS root")]
    fn scratch_rejects_duplicate_roots() {
        let g = path_graph(3);
        BfsScratch::new(3).run_multi(&g, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "does not match scratch dimension")]
    fn scratch_rejects_mismatched_graph() {
        let g = path_graph(3);
        BfsScratch::new(5).run(&g, 0);
    }

    #[test]
    #[should_panic(expected = "at least one root")]
    fn empty_roots_rejected() {
        let g = path_graph(3);
        BfsTree::new_multi(&g, &[]);
    }
}
