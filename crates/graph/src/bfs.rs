//! Breadth-first search layers — the tree structure behind K-dash's
//! proximity estimation (§4.3 of the paper).
//!
//! The random walk moves along *out*-edges, so the search tree follows
//! out-edges from the query node: layer 0 is the root, layer `i` contains
//! the nodes exactly `i` hops downstream. Nodes that are not reachable have
//! RWR proximity exactly 0 and are reported with layer [`UNREACHABLE`].

use crate::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Layer marker for nodes the BFS never reached.
pub const UNREACHABLE: u32 = u32::MAX;

/// The result of a breadth-first traversal from a root node.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// Root the traversal started from.
    pub root: NodeId,
    /// Nodes in visit order (root first). Length = number of reachable nodes.
    pub order: Vec<NodeId>,
    /// `layer[v]` = hop distance from the root, or [`UNREACHABLE`].
    pub layer: Vec<u32>,
    /// `parent[v]` = BFS tree parent, `parent[root] = root`,
    /// [`NodeId::MAX`] for unreachable nodes.
    pub parent: Vec<NodeId>,
}

impl BfsTree {
    /// Runs BFS over out-edges from `root`.
    pub fn new(graph: &CsrGraph, root: NodeId) -> Self {
        Self::new_multi(graph, &[root])
    }

    /// Runs BFS over out-edges from several roots simultaneously; all
    /// roots form layer 0 (in the given order) and are their own parents.
    /// The multi-source K-dash search (restart sets, Personalized PageRank
    /// style) builds its layer structure this way. `roots` must be
    /// non-empty and duplicate-free.
    pub fn new_multi(graph: &CsrGraph, roots: &[NodeId]) -> Self {
        let n = graph.num_nodes();
        assert!(!roots.is_empty(), "BFS needs at least one root");
        let mut layer = vec![UNREACHABLE; n];
        let mut parent = vec![NodeId::MAX; n];
        let mut order = Vec::with_capacity(n.min(1024));
        let mut queue = VecDeque::new();
        for &root in roots {
            assert!((root as usize) < n, "BFS root {root} out of bounds for {n} nodes");
            assert!(layer[root as usize] == UNREACHABLE, "duplicate BFS root {root}");
            layer[root as usize] = 0;
            parent[root as usize] = root;
            queue.push_back(root);
        }
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let next_layer = layer[v as usize] + 1;
            for &t in graph.out_neighbors(v) {
                if layer[t as usize] == UNREACHABLE {
                    layer[t as usize] = next_layer;
                    parent[t as usize] = v;
                    queue.push_back(t);
                }
            }
        }
        BfsTree { root: roots[0], order, layer, parent }
    }

    /// Number of nodes reachable from the root (including the root).
    #[inline]
    pub fn num_reachable(&self) -> usize {
        self.order.len()
    }

    /// Hop distance of `v` from the root, if reachable.
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        let l = self.layer[v as usize];
        (l != UNREACHABLE).then_some(l)
    }

    /// The deepest populated layer index (0 for a lone root).
    pub fn depth(&self) -> u32 {
        self.order.iter().map(|&v| self.layer[v as usize]).max().unwrap_or(0)
    }

    /// Verifies the two invariants the K-dash estimator relies on:
    /// visit order is non-decreasing in layer, and every non-root reachable
    /// node has a parent exactly one layer above it (roots are their own
    /// parents at layer 0).
    pub fn check_invariants(&self, graph: &CsrGraph) -> bool {
        let mut prev = 0u32;
        for &v in &self.order {
            let l = self.layer[v as usize];
            if l < prev {
                return false;
            }
            prev = l;
            let p = self.parent[v as usize];
            if p == v {
                if l != 0 {
                    return false;
                }
            } else if p == NodeId::MAX
                || self.layer[p as usize] + 1 != l
                || !graph.has_edge(p, v)
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_edge(v as NodeId, v as NodeId + 1, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn path_layers() {
        let g = path_graph(5);
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.layer, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.depth(), 4);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn unreachable_nodes_marked() {
        let g = path_graph(5);
        let t = BfsTree::new(&g, 2); // 0 and 1 are upstream, unreachable
        assert_eq!(t.num_reachable(), 3);
        assert_eq!(t.layer[0], UNREACHABLE);
        assert_eq!(t.layer[1], UNREACHABLE);
        assert_eq!(t.distance(0), None);
        assert_eq!(t.distance(4), Some(2));
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn directed_edges_only() {
        // 0 -> 1, 2 -> 1 : from 0 we cannot reach 2
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build().unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.num_reachable(), 2);
        assert_eq!(t.layer[2], UNREACHABLE);
    }

    #[test]
    fn diamond_parents() {
        // 0 -> {1, 2}, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build().unwrap();
        let t = BfsTree::new(&g, 0);
        assert_eq!(t.layer, vec![0, 1, 1, 2]);
        assert_eq!(t.parent[0], 0);
        assert!(t.parent[3] == 1 || t.parent[3] == 2);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn lone_root() {
        let g = GraphBuilder::new(3).build().unwrap();
        let t = BfsTree::new(&g, 1);
        assert_eq!(t.order, vec![1]);
        assert_eq!(t.depth(), 0);
        assert!(t.check_invariants(&g));
    }

    #[test]
    fn multi_source_layers() {
        // path 0 -> 1 -> 2 -> 3 -> 4; roots {0, 3}.
        let g = path_graph(5);
        let t = BfsTree::new_multi(&g, &[0, 3]);
        assert_eq!(t.layer, vec![0, 1, 2, 0, 1]);
        assert_eq!(t.order, vec![0, 3, 1, 4, 2]);
        assert_eq!(t.parent[0], 0);
        assert_eq!(t.parent[3], 3);
        assert!(t.check_invariants(&g));
    }

    #[test]
    #[should_panic(expected = "duplicate BFS root")]
    fn duplicate_roots_rejected() {
        let g = path_graph(3);
        BfsTree::new_multi(&g, &[0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one root")]
    fn empty_roots_rejected() {
        let g = path_graph(3);
        BfsTree::new_multi(&g, &[]);
    }
}
