//! Plain-text edge-list I/O.
//!
//! The format matches the public datasets the paper uses (SNAP / Pajek style
//! exports): one edge per line, `src dst [weight]`, whitespace separated,
//! with `#` or `%` comment lines. Node ids must be non-negative integers;
//! they are used verbatim (the graph gets `max id + 1` nodes).

use crate::{CsrGraph, GraphBuilder, GraphError, NodeId, Result};
use std::io::{BufRead, Write};

/// Parses an edge list from a reader. Missing weights default to `1.0`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph> {
    let mut edges: Vec<(NodeId, NodeId, f64)> = Vec::new();
    let mut max_node: i64 = -1;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Parse {
            line: line_no,
            message: format!("io error: {e}"),
        })?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src = parse_node(parts.next(), line_no, "source")?;
        let dst = parse_node(parts.next(), line_no, "target")?;
        let weight = match parts.next() {
            None => 1.0,
            Some(tok) => tok.parse::<f64>().map_err(|_| GraphError::Parse {
                line: line_no,
                message: format!("invalid weight '{tok}'"),
            })?,
        };
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "expected at most 3 fields (src dst weight)".into(),
            });
        }
        max_node = max_node.max(src as i64).max(dst as i64);
        edges.push((src, dst, weight));
    }
    let n = (max_node + 1) as usize;
    GraphBuilder::from_edges(n, edges).build()
}

fn parse_node(tok: Option<&str>, line: usize, what: &str) -> Result<NodeId> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what} node id"),
    })?;
    tok.parse::<NodeId>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid {what} node id '{tok}'"),
    })
}

/// Writes a graph as `src dst weight` lines (weight omitted when `1.0`).
pub fn write_edge_list<W: Write>(graph: &CsrGraph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# kdash edge list: {} nodes, {} edges", graph.num_nodes(), graph.num_edges())?;
    for (s, d, w) in graph.edges() {
        if w == 1.0 {
            writeln!(writer, "{s} {d}")?;
        } else {
            writeln!(writer, "{s} {d} {w}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let text = "# comment\n0 1\n1 2 2.5\n% also comment\n\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge_weight(1, 2), Some(2.5));
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = read_edge_list("0 1\nx 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
        let err = read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("0 1 1.0 extra\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("0 1 notanumber\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn duplicate_edges_merge_by_sum() {
        let g = read_edge_list("0 1 1.0\n0 1 2.0\n".as_bytes()).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn roundtrip() {
        let text = "0 1\n1 2 2.5\n2 0 0.25\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let g = read_edge_list("# nothing here\n".as_bytes()).unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }
}
