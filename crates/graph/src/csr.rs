//! Immutable compressed-sparse-row directed graph.

use crate::{GraphError, NodeId, Permutation, Result};

/// A directed, weighted graph in compressed-sparse-row form.
///
/// Row `v` stores the *out*-edges of `v` with strictly positive, finite
/// weights, sorted by target id and free of duplicates. The structure is
/// immutable after construction; use [`crate::GraphBuilder`] to build one.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    /// `row_ptr[v]..row_ptr[v+1]` indexes the out-edges of `v`. Length `n+1`.
    row_ptr: Vec<usize>,
    /// Edge targets, sorted within each row. Length `m`.
    col_idx: Vec<NodeId>,
    /// Edge weights, parallel to `col_idx`.
    weights: Vec<f64>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays, validating every invariant
    /// (monotone `row_ptr`, in-bounds sorted targets, positive finite
    /// weights, no duplicates within a row).
    pub fn from_raw_parts(
        row_ptr: Vec<usize>,
        col_idx: Vec<NodeId>,
        weights: Vec<f64>,
    ) -> Result<Self> {
        if row_ptr.is_empty() {
            return Err(GraphError::MalformedCsr("row_ptr must have length n+1 >= 1".into()));
        }
        let n = row_ptr.len() - 1;
        let m = col_idx.len();
        if weights.len() != m {
            return Err(GraphError::MalformedCsr(format!(
                "col_idx has {} entries but weights has {}",
                m,
                weights.len()
            )));
        }
        if row_ptr[0] != 0 || row_ptr[n] != m {
            return Err(GraphError::MalformedCsr(
                "row_ptr must start at 0 and end at num_edges".into(),
            ));
        }
        for v in 0..n {
            if row_ptr[v] > row_ptr[v + 1] {
                return Err(GraphError::MalformedCsr(format!("row_ptr not monotone at row {v}")));
            }
            let row = &col_idx[row_ptr[v]..row_ptr[v + 1]];
            let w = &weights[row_ptr[v]..row_ptr[v + 1]];
            for (i, (&t, &wt)) in row.iter().zip(w).enumerate() {
                if (t as usize) >= n {
                    return Err(GraphError::NodeOutOfBounds { node: t, num_nodes: n });
                }
                if !(wt.is_finite() && wt > 0.0) {
                    return Err(GraphError::InvalidWeight { src: v as NodeId, dst: t, weight: wt });
                }
                if i > 0 && row[i - 1] >= t {
                    return Err(GraphError::MalformedCsr(format!(
                        "row {v} targets not strictly increasing"
                    )));
                }
            }
        }
        Ok(CsrGraph { row_ptr, col_idx, weights })
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_idx.len()
    }

    /// Out-degree of `v` (number of distinct out-edges).
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.row_ptr[v + 1] - self.row_ptr[v]
    }

    /// Targets of the out-edges of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.col_idx[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Weights of the out-edges of `v`, parallel to [`Self::out_neighbors`].
    #[inline]
    pub fn out_weights(&self, v: NodeId) -> &[f64] {
        let v = v as usize;
        &self.weights[self.row_ptr[v]..self.row_ptr[v + 1]]
    }

    /// Iterator over `(target, weight)` out-edges of `v`.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.out_neighbors(v).iter().copied().zip(self.out_weights(v).iter().copied())
    }

    /// Iterator over all `(src, dst, weight)` edges in row order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |v| self.out_edges(v).map(move |(t, w)| (v, t, w)))
    }

    /// Sum of the out-edge weights of `v` (the normaliser for the transition
    /// matrix column of `v`). Zero for dangling nodes.
    #[inline]
    pub fn out_weight_sum(&self, v: NodeId) -> f64 {
        self.out_weights(v).iter().sum()
    }

    /// Weight of edge `u -> v` if present (binary search within the row).
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let row = self.out_neighbors(u);
        row.binary_search(&v).ok().map(|i| self.out_weights(u)[i])
    }

    /// True if the directed edge `u -> v` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// In-degrees of every node (one `O(m)` pass).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_nodes()];
        for &t in &self.col_idx {
            d[t as usize] += 1;
        }
        d
    }

    /// Total degree (in + out) of every node; the "degree" used by the
    /// paper's degree reordering (number of edges incident to a node).
    pub fn total_degrees(&self) -> Vec<usize> {
        let mut d = self.in_degrees();
        for (dv, w) in d.iter_mut().zip(self.row_ptr.windows(2)) {
            *dv += w[1] - w[0];
        }
        d
    }

    /// Number of nodes with no out-edges ("dangling" nodes that make the
    /// transition matrix sub-stochastic).
    pub fn num_dangling(&self) -> usize {
        (0..self.num_nodes() as NodeId).filter(|&v| self.out_degree(v) == 0).count()
    }

    /// The transposed graph (every edge reversed). `O(n + m)`.
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_nodes();
        let mut row_ptr = vec![0usize; n + 1];
        for &t in &self.col_idx {
            row_ptr[t as usize + 1] += 1;
        }
        for v in 0..n {
            row_ptr[v + 1] += row_ptr[v];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0 as NodeId; self.num_edges()];
        let mut weights = vec![0.0f64; self.num_edges()];
        for v in 0..n as NodeId {
            for (t, w) in self.out_edges(v) {
                let slot = cursor[t as usize];
                col_idx[slot] = v;
                weights[slot] = w;
                cursor[t as usize] += 1;
            }
        }
        // Rows of the transpose are filled in increasing source order, hence
        // already sorted by target.
        CsrGraph { row_ptr, col_idx, weights }
    }

    /// Undirected view: for every pair `{u, v}` the weight is the sum of the
    /// weights of `u -> v` and `v -> u`; self-loops keep their weight. Used
    /// by Louvain clustering, which is defined on undirected graphs.
    pub fn symmetrize(&self) -> CsrGraph {
        let n = self.num_nodes();
        let mut builder = crate::GraphBuilder::with_capacity(n, self.num_edges() * 2);
        builder.set_merge_policy(crate::MergePolicy::Sum);
        for (u, v, w) in self.edges() {
            builder.add_edge(u, v, w);
            if u != v {
                builder.add_edge(v, u, w);
            }
        }
        builder.build().expect("symmetrize preserves validity")
    }

    /// Relabels nodes by `perm` (old id `v` becomes `perm.new_of(v)`).
    /// Both endpoints are remapped and rows re-sorted. `O(n + m log d_max)`.
    pub fn permute(&self, perm: &Permutation) -> Result<CsrGraph> {
        let n = self.num_nodes();
        if perm.len() != n {
            return Err(GraphError::InvalidPermutation(format!(
                "permutation has length {} but graph has {} nodes",
                perm.len(),
                n
            )));
        }
        let mut row_ptr = vec![0usize; n + 1];
        for new_v in 0..n {
            let old_v = perm.old_of(new_v as NodeId);
            row_ptr[new_v + 1] = row_ptr[new_v] + self.out_degree(old_v);
        }
        let m = self.num_edges();
        let mut col_idx = Vec::with_capacity(m);
        let mut weights = Vec::with_capacity(m);
        let mut scratch: Vec<(NodeId, f64)> = Vec::new();
        for new_v in 0..n as NodeId {
            let old_v = perm.old_of(new_v);
            scratch.clear();
            scratch.extend(self.out_edges(old_v).map(|(t, w)| (perm.new_of(t), w)));
            scratch.sort_unstable_by_key(|&(t, _)| t);
            for &(t, w) in &scratch {
                col_idx.push(t);
                weights.push(w);
            }
        }
        Ok(CsrGraph { row_ptr, col_idx, weights })
    }

    /// Induced subgraph on `nodes` (need not be sorted; duplicates are an
    /// error). Returns the subgraph plus the mapping `local -> global`.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<(CsrGraph, Vec<NodeId>)> {
        let n = self.num_nodes();
        let mut local_of = vec![NodeId::MAX; n];
        for (i, &v) in nodes.iter().enumerate() {
            if (v as usize) >= n {
                return Err(GraphError::NodeOutOfBounds { node: v, num_nodes: n });
            }
            if local_of[v as usize] != NodeId::MAX {
                return Err(GraphError::InvalidPermutation(format!(
                    "node {v} listed twice in subgraph selection"
                )));
            }
            local_of[v as usize] = i as NodeId;
        }
        let mut builder = crate::GraphBuilder::new(nodes.len());
        for (i, &v) in nodes.iter().enumerate() {
            for (t, w) in self.out_edges(v) {
                let lt = local_of[t as usize];
                if lt != NodeId::MAX {
                    builder.add_edge(i as NodeId, lt, w);
                }
            }
        }
        Ok((builder.build()?, nodes.to_vec()))
    }

    /// Raw CSR views, for zero-copy interop with the sparse-matrix crate.
    pub fn raw(&self) -> (&[usize], &[NodeId], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, 3 -> 0
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.out_weights(0), &[1.0, 2.0]);
        assert_eq!(g.out_weight_sum(0), 3.0);
        assert!(g.has_edge(3, 0));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edge_weight(0, 2), Some(2.0));
        assert_eq!(g.edge_weight(2, 0), None);
        assert_eq!(g.num_dangling(), 0);
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.in_degrees(), vec![1, 1, 1, 2]);
        assert_eq!(g.total_degrees(), vec![3, 2, 2, 3]);
    }

    #[test]
    fn transpose_involution() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert!(t.has_edge(1, 0));
        assert!(t.has_edge(0, 3));
        assert_eq!(t.edge_weight(0, 3), Some(4.0));
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn symmetrize_sums_antiparallel() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 2.5);
        let g = b.build().unwrap();
        let s = g.symmetrize();
        assert_eq!(s.edge_weight(0, 1), Some(3.5));
        assert_eq!(s.edge_weight(1, 0), Some(3.5));
    }

    #[test]
    fn permute_preserves_structure() {
        let g = diamond();
        // new order: old [3, 2, 1, 0]
        let perm = Permutation::from_new_order(vec![3, 2, 1, 0]).unwrap();
        let p = g.permute(&perm).unwrap();
        assert_eq!(p.num_edges(), g.num_edges());
        // old edge 3 -> 0 becomes new 0 -> 3
        assert_eq!(p.edge_weight(0, 3), Some(4.0));
        // old edge 0 -> 2 becomes new 3 -> 1
        assert_eq!(p.edge_weight(3, 1), Some(2.0));
        // round trip through the inverse permutation restores the graph
        let back = p.permute(&perm.inverse()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges() {
        let g = diamond();
        let (sub, map) = g.induced_subgraph(&[0, 1, 3]).unwrap();
        assert_eq!(map, vec![0, 1, 3]);
        assert_eq!(sub.num_nodes(), 3);
        // surviving edges: 0->1, 1->3 (local 1->2), 3->0 (local 2->0)
        assert_eq!(sub.num_edges(), 3);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(sub.has_edge(2, 0));
    }

    #[test]
    fn from_raw_parts_validates() {
        assert!(CsrGraph::from_raw_parts(vec![0, 1], vec![0], vec![1.0]).is_ok());
        // out of bounds target
        assert!(matches!(
            CsrGraph::from_raw_parts(vec![0, 1], vec![5], vec![1.0]),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        // negative weight
        assert!(matches!(
            CsrGraph::from_raw_parts(vec![0, 1], vec![0], vec![-1.0]),
            Err(GraphError::InvalidWeight { .. })
        ));
        // unsorted row
        assert!(CsrGraph::from_raw_parts(vec![0, 2], vec![1, 0], vec![1.0, 1.0]).is_err());
        // non-monotone row_ptr
        assert!(CsrGraph::from_raw_parts(vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn empty_and_single_node() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        let g1 = GraphBuilder::new(1).build().unwrap();
        assert_eq!(g1.num_nodes(), 1);
        assert_eq!(g1.num_dangling(), 1);
        assert_eq!(g1.out_degree(0), 0);
    }
}
