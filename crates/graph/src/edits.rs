//! Edge-level mutations of a frozen [`CsrGraph`].
//!
//! A [`CsrGraph`] is immutable by design — the query engine depends on the
//! sorted, duplicate-free row invariants. Serving a *changing* graph
//! therefore goes through [`CsrGraph::apply_edits`]: a validated batch of
//! [`EdgeEdit`]s produces a *new* graph in which only the touched rows were
//! rebuilt, with exactly the arrays a from-scratch [`crate::GraphBuilder`]
//! construction of the edited edge set would produce. That bit-for-bit
//! reproducibility is what lets the dynamic index engine (`kdash-dynamic`)
//! prove its incrementally patched inverses equal a full rebuild.
//!
//! Edits apply **sequentially**: within one batch an `Insert` may create
//! the edge a later `Delete` removes. Each edit is validated against the
//! graph state it observes — inserting an edge that already exists,
//! deleting or reweighting one that does not, referencing an unknown node,
//! or supplying a non-positive/non-finite weight all fail with a typed
//! [`GraphError`] instead of panicking or silently merging.

use crate::{CsrGraph, GraphError, NodeId, Result};

/// One edge mutation. Weights obey the same rules as construction:
/// strictly positive and finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeEdit {
    /// Add the directed edge `src -> dst`. Fails with
    /// [`GraphError::DuplicateEdge`] if the edge already exists (use
    /// [`EdgeEdit::Reweight`] to change an existing weight).
    Insert { src: NodeId, dst: NodeId, weight: f64 },
    /// Remove the directed edge `src -> dst`. Fails with
    /// [`GraphError::EdgeNotFound`] if absent.
    Delete { src: NodeId, dst: NodeId },
    /// Replace the weight of the existing edge `src -> dst`. Fails with
    /// [`GraphError::EdgeNotFound`] if absent.
    Reweight { src: NodeId, dst: NodeId, weight: f64 },
}

impl EdgeEdit {
    /// Source endpoint of the edited edge.
    #[inline]
    pub fn src(&self) -> NodeId {
        match *self {
            EdgeEdit::Insert { src, .. }
            | EdgeEdit::Delete { src, .. }
            | EdgeEdit::Reweight { src, .. } => src,
        }
    }

    /// Target endpoint of the edited edge.
    #[inline]
    pub fn dst(&self) -> NodeId {
        match *self {
            EdgeEdit::Insert { dst, .. }
            | EdgeEdit::Delete { dst, .. }
            | EdgeEdit::Reweight { dst, .. } => dst,
        }
    }

    /// The new weight, for the variants that carry one.
    #[inline]
    pub fn weight(&self) -> Option<f64> {
        match *self {
            EdgeEdit::Insert { weight, .. } | EdgeEdit::Reweight { weight, .. } => Some(weight),
            EdgeEdit::Delete { .. } => None,
        }
    }

    /// The same edit with both endpoints relabelled through `f` — how the
    /// dynamic engine maps user-space edits into the index's permuted id
    /// space.
    pub fn map_endpoints(&self, mut f: impl FnMut(NodeId) -> NodeId) -> EdgeEdit {
        match *self {
            EdgeEdit::Insert { src, dst, weight } => {
                EdgeEdit::Insert { src: f(src), dst: f(dst), weight }
            }
            EdgeEdit::Delete { src, dst } => EdgeEdit::Delete { src: f(src), dst: f(dst) },
            EdgeEdit::Reweight { src, dst, weight } => {
                EdgeEdit::Reweight { src: f(src), dst: f(dst), weight }
            }
        }
    }
}

impl CsrGraph {
    /// Applies a batch of edits, returning a new graph with only the
    /// touched rows rebuilt. Rows keep the canonical CSR invariants
    /// (sorted, duplicate-free), so the result equals what rebuilding the
    /// edited edge list from scratch produces — arrays included.
    ///
    /// Validation is all-or-nothing: the first invalid edit (unknown node,
    /// bad weight, duplicate insert, missing delete/reweight target —
    /// judged against the *sequentially edited* state) aborts the whole
    /// batch and the original graph is untouched.
    pub fn apply_edits(&self, edits: &[EdgeEdit]) -> Result<CsrGraph> {
        let n = self.num_nodes();
        // Working copies of only the rows the batch touches, keyed by
        // source node, materialised lazily on first touch.
        let mut touched: std::collections::BTreeMap<NodeId, Vec<(NodeId, f64)>> =
            std::collections::BTreeMap::new();
        for edit in edits {
            let (src, dst) = (edit.src(), edit.dst());
            for node in [src, dst] {
                if (node as usize) >= n {
                    return Err(GraphError::NodeOutOfBounds { node, num_nodes: n });
                }
            }
            if let Some(w) = edit.weight() {
                if !(w.is_finite() && w > 0.0) {
                    return Err(GraphError::InvalidWeight { src, dst, weight: w });
                }
            }
            let row = touched
                .entry(src)
                .or_insert_with(|| self.out_edges(src).collect());
            let slot = row.binary_search_by_key(&dst, |&(t, _)| t);
            match (edit, slot) {
                (EdgeEdit::Insert { .. }, Ok(_)) => {
                    return Err(GraphError::DuplicateEdge { src, dst });
                }
                (EdgeEdit::Insert { weight, .. }, Err(pos)) => {
                    row.insert(pos, (dst, *weight));
                }
                (EdgeEdit::Delete { .. }, Ok(pos)) => {
                    row.remove(pos);
                }
                (EdgeEdit::Reweight { weight, .. }, Ok(pos)) => {
                    row[pos].1 = *weight;
                }
                (EdgeEdit::Delete { .. } | EdgeEdit::Reweight { .. }, Err(_)) => {
                    return Err(GraphError::EdgeNotFound { src, dst });
                }
            }
        }

        // Rebuild the CSR arrays: untouched rows copy over verbatim,
        // touched rows take their edited (already sorted) content.
        let delta: isize = touched
            .iter()
            .map(|(&v, row)| row.len() as isize - self.out_degree(v) as isize)
            .sum();
        let new_m = (self.num_edges() as isize + delta) as usize;
        let mut row_ptr = Vec::with_capacity(n + 1);
        row_ptr.push(0usize);
        let mut col_idx: Vec<NodeId> = Vec::with_capacity(new_m);
        let mut weights: Vec<f64> = Vec::with_capacity(new_m);
        for v in 0..n as NodeId {
            match touched.get(&v) {
                Some(row) => {
                    for &(t, w) in row {
                        col_idx.push(t);
                        weights.push(w);
                    }
                }
                None => {
                    col_idx.extend_from_slice(self.out_neighbors(v));
                    weights.extend_from_slice(self.out_weights(v));
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrGraph::from_raw_parts(row_ptr, col_idx, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 4.0);
        b.build().unwrap()
    }

    #[test]
    fn insert_delete_reweight_roundtrip() {
        let g = diamond();
        let edited = g
            .apply_edits(&[
                EdgeEdit::Insert { src: 1, dst: 2, weight: 0.5 },
                EdgeEdit::Delete { src: 0, dst: 2 },
                EdgeEdit::Reweight { src: 3, dst: 0, weight: 9.0 },
            ])
            .unwrap();
        assert_eq!(edited.edge_weight(1, 2), Some(0.5));
        assert!(!edited.has_edge(0, 2));
        assert_eq!(edited.edge_weight(3, 0), Some(9.0));
        assert_eq!(edited.num_edges(), 5);
        // Untouched rows are preserved exactly.
        assert_eq!(edited.out_neighbors(2), g.out_neighbors(2));
        assert_eq!(edited.out_weights(2), g.out_weights(2));
    }

    #[test]
    fn matches_from_scratch_rebuild() {
        let g = diamond();
        let edits = [
            EdgeEdit::Insert { src: 2, dst: 0, weight: 0.25 },
            EdgeEdit::Delete { src: 1, dst: 3 },
            EdgeEdit::Reweight { src: 0, dst: 1, weight: 7.5 },
        ];
        let incremental = g.apply_edits(&edits).unwrap();
        let mut b = GraphBuilder::new(4);
        for (s, d, w) in g.edges() {
            match (s, d) {
                (1, 3) => {}
                (0, 1) => {
                    b.add_edge(0, 1, 7.5);
                }
                _ => {
                    b.add_edge(s, d, w);
                }
            }
        }
        b.add_edge(2, 0, 0.25);
        let scratch = b.build().unwrap();
        assert_eq!(incremental, scratch, "edited graph must equal a rebuild");
    }

    #[test]
    fn edits_apply_sequentially() {
        let g = diamond();
        // Insert then delete the same edge: legal, net no-op.
        let same = g
            .apply_edits(&[
                EdgeEdit::Insert { src: 1, dst: 0, weight: 1.0 },
                EdgeEdit::Delete { src: 1, dst: 0 },
            ])
            .unwrap();
        assert_eq!(same, g);
        // Delete then re-insert with a new weight: a reweight in two steps.
        let rw = g
            .apply_edits(&[
                EdgeEdit::Delete { src: 0, dst: 1 },
                EdgeEdit::Insert { src: 0, dst: 1, weight: 3.0 },
            ])
            .unwrap();
        assert_eq!(rw.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn invalid_edits_rejected_with_typed_errors() {
        let g = diamond();
        assert!(matches!(
            g.apply_edits(&[EdgeEdit::Insert { src: 9, dst: 0, weight: 1.0 }]),
            Err(GraphError::NodeOutOfBounds { node: 9, .. })
        ));
        assert!(matches!(
            g.apply_edits(&[EdgeEdit::Delete { src: 0, dst: 9 }]),
            Err(GraphError::NodeOutOfBounds { node: 9, .. })
        ));
        assert!(matches!(
            g.apply_edits(&[EdgeEdit::Delete { src: 1, dst: 0 }]),
            Err(GraphError::EdgeNotFound { src: 1, dst: 0 })
        ));
        assert!(matches!(
            g.apply_edits(&[EdgeEdit::Reweight { src: 1, dst: 0, weight: 2.0 }]),
            Err(GraphError::EdgeNotFound { src: 1, dst: 0 })
        ));
        assert!(matches!(
            g.apply_edits(&[EdgeEdit::Insert { src: 0, dst: 1, weight: 1.0 }]),
            Err(GraphError::DuplicateEdge { src: 0, dst: 1 })
        ));
        assert!(matches!(
            g.apply_edits(&[EdgeEdit::Insert { src: 1, dst: 0, weight: -1.0 }]),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.apply_edits(&[EdgeEdit::Reweight { src: 0, dst: 1, weight: f64::NAN }]),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn failed_batch_leaves_graph_untouched() {
        let g = diamond();
        let before = g.clone();
        let err = g.apply_edits(&[
            EdgeEdit::Insert { src: 1, dst: 2, weight: 1.0 }, // valid
            EdgeEdit::Delete { src: 2, dst: 0 },              // absent -> abort
        ]);
        assert!(matches!(err, Err(GraphError::EdgeNotFound { src: 2, dst: 0 })));
        assert_eq!(g, before);
    }

    #[test]
    fn empty_batch_is_identity() {
        let g = diamond();
        assert_eq!(g.apply_edits(&[]).unwrap(), g);
    }

    #[test]
    fn map_endpoints_relabels() {
        let e = EdgeEdit::Insert { src: 1, dst: 2, weight: 0.5 };
        let mapped = e.map_endpoints(|v| v + 10);
        assert_eq!(mapped, EdgeEdit::Insert { src: 11, dst: 12, weight: 0.5 });
        assert_eq!(mapped.src(), 11);
        assert_eq!(mapped.dst(), 12);
        assert_eq!(mapped.weight(), Some(0.5));
        assert_eq!(EdgeEdit::Delete { src: 0, dst: 1 }.weight(), None);
    }

    #[test]
    fn self_loop_edits_are_legal() {
        let g = diamond();
        let looped = g.apply_edits(&[EdgeEdit::Insert { src: 2, dst: 2, weight: 1.5 }]).unwrap();
        assert_eq!(looped.edge_weight(2, 2), Some(1.5));
        let back = looped.apply_edits(&[EdgeEdit::Delete { src: 2, dst: 2 }]).unwrap();
        assert_eq!(back, g);
    }
}
