//! Monte-Carlo top-k estimation (Avrachenkov, Litvak, Nemirovsky,
//! Smirnova & Sokol, "Quick Detection of Top-k Personalized PageRank
//! Lists", WAW 2011).
//!
//! The paper's §6 discusses this method as the other contemporaneous
//! top-k approach and dismisses it because — unlike BPA — it offers no
//! recall guarantee. It is included here as an extension baseline: simulate
//! `walks` restart-walks from the query; the empirical visit frequencies
//! converge to the RWR proximities. Detecting the top-k *list* needs far
//! fewer walks than accurate value estimation, which is exactly the
//! trade-off the WAW paper exploits — and the lack of any certificate is
//! what K-dash's exactness argument is contrasted against.

use crate::{top_k_of_dense, Scored, TopKEngine};
use kdash_graph::{CsrGraph, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Monte-Carlo RWR engine.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    graph: CsrGraph,
    c: f64,
    walks: usize,
    seed: u64,
    /// Cumulative out-weight tables per node for O(log d) edge sampling.
    cumulative: Vec<Vec<f64>>,
}

impl MonteCarlo {
    /// Prepares the sampler. `walks` is the number of simulated walks per
    /// query (the accuracy knob).
    pub fn build(graph: &CsrGraph, c: f64, walks: usize, seed: u64) -> MonteCarlo {
        assert!(c > 0.0 && c < 1.0, "restart probability must be in (0, 1)");
        assert!(walks > 0, "need at least one walk");
        let cumulative = (0..graph.num_nodes() as NodeId)
            .map(|v| {
                let mut acc = 0.0;
                graph
                    .out_weights(v)
                    .iter()
                    .map(|w| {
                        acc += w;
                        acc
                    })
                    .collect()
            })
            .collect();
        MonteCarlo { graph: graph.clone(), c, walks, seed, cumulative }
    }

    /// Empirical visit-frequency estimates of the proximity vector.
    ///
    /// Each walk starts at `q`, terminates with probability `c` per step
    /// (equivalent to restarting), and every visited node is counted; the
    /// normalised counts estimate `p` because the stationary equation
    /// weights node visits by `c·(1−c)^t` over walk prefixes.
    pub fn full(&self, q: NodeId) -> Vec<f64> {
        let n = self.graph.num_nodes();
        assert!((q as usize) < n, "query {q} out of bounds");
        // Per-query deterministic seed so engines are reproducible.
        let mut rng = StdRng::seed_from_u64(self.seed ^ (0x9E37_79B9_7F4A_7C15u64 ^ u64::from(q)));
        let mut counts = vec![0u64; n];
        let mut total = 0u64;
        for _ in 0..self.walks {
            let mut at = q;
            loop {
                counts[at as usize] += 1;
                total += 1;
                if rng.gen_bool(self.c) {
                    break; // restart == terminate this walk
                }
                let (neighbors, _) = (self.graph.out_neighbors(at), ());
                if neighbors.is_empty() {
                    break; // dangling: walk dies (DanglingPolicy::Keep)
                }
                let cum = &self.cumulative[at as usize];
                let target = rng.gen_range(0.0..*cum.last().expect("non-empty"));
                let idx = cum.partition_point(|&x| x <= target).min(neighbors.len() - 1);
                at = neighbors[idx];
            }
        }
        let norm = 1.0 / total.max(1) as f64;
        // Visit frequency normalised by walk count estimates p directly:
        // E[visits of u per walk] = p_u / c, and E[total] = 1/c.
        counts.into_iter().map(|ct| ct as f64 * norm).collect()
    }
}

impl TopKEngine for MonteCarlo {
    fn name(&self) -> String {
        format!("MonteCarlo({})", self.walks)
    }

    fn top_k(&self, q: NodeId, k: usize) -> Vec<Scored> {
        top_k_of_dense(&self.full(q), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterativeRwr;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(n: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..rng.gen_range(2..5) {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, rng.gen_range(0.5..2.0));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn estimates_converge_to_iterative() {
        let g = random_graph(30, 1);
        let c = 0.5;
        let mc = MonteCarlo::build(&g, c, 60_000, 7);
        let exact = IterativeRwr::new(&g, c);
        let q = 4;
        let approx = mc.full(q);
        let truth = exact.full(q);
        for (i, (a, t)) in approx.iter().zip(&truth).enumerate() {
            assert!((a - t).abs() < 0.01, "node {i}: {a} vs {t}");
        }
    }

    #[test]
    fn top_k_detection_needs_fewer_walks_than_values() {
        // The WAW 2011 observation: ranking stabilises early.
        let g = random_graph(60, 3);
        let c = 0.7;
        let mc = MonteCarlo::build(&g, c, 4_000, 11);
        let exact = IterativeRwr::new(&g, c);
        let q = 10;
        let truth: Vec<NodeId> = exact.top_k(q, 5).into_iter().map(|(n, _)| n).collect();
        let got: Vec<NodeId> = mc.top_k(q, 5).into_iter().map(|(n, _)| n).collect();
        let hits = got.iter().filter(|n| truth.contains(n)).count();
        assert!(hits >= 4, "top-5 detection should be nearly right: {hits}/5");
    }

    #[test]
    fn weighted_edges_bias_the_walk() {
        // 0 -> 1 (weight 9), 0 -> 2 (weight 1): node 1 visited ~9x more.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 9.0);
        b.add_edge(0, 2, 1.0);
        let g = b.build().unwrap();
        let mc = MonteCarlo::build(&g, 0.5, 40_000, 3);
        let p = mc.full(0);
        let ratio = p[1] / p[2].max(1e-12);
        assert!((ratio - 9.0).abs() < 2.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = random_graph(20, 5);
        let a = MonteCarlo::build(&g, 0.6, 500, 9).full(3);
        let b = MonteCarlo::build(&g, 0.6, 500, 9).full(3);
        assert_eq!(a, b);
    }

    #[test]
    fn no_recall_guarantee_unlike_bpa() {
        // With very few walks the answer can miss true top-k nodes — the
        // paper's §6 reason for comparing against BPA instead.
        let g = random_graph(80, 8);
        let mc = MonteCarlo::build(&g, 0.9, 20, 1);
        let exact = IterativeRwr::new(&g, 0.9);
        let mut misses = 0;
        for q in [0u32, 20, 40, 60] {
            let truth: Vec<NodeId> = exact.top_k(q, 5).into_iter().map(|(n, _)| n).collect();
            let got: Vec<NodeId> = mc.top_k(q, 5).into_iter().map(|(n, _)| n).collect();
            misses += truth.iter().filter(|t| !got.contains(t)).count();
        }
        assert!(misses > 0, "20 walks cannot reliably find every top-5 node");
    }
}
