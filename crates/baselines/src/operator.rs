//! Adapter exposing a sparse matrix as a `kdash-linalg` linear operator,
//! so the randomized SVD can sketch it without a dependency cycle.

use kdash_linalg::svd::LinearOperator;
use kdash_sparse::CscMatrix;

/// Borrowed view of a [`CscMatrix`] as a [`LinearOperator`].
pub struct CscOperator<'a>(pub &'a CscMatrix);

impl LinearOperator for CscOperator<'_> {
    fn nrows(&self) -> usize {
        self.0.nrows()
    }
    fn ncols(&self) -> usize {
        self.0.ncols()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.0.matvec_add(x, y);
    }
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        y.fill(0.0);
        self.0.matvec_transpose_add(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_linalg::{randomized_svd, SvdOptions};

    #[test]
    fn svd_through_sparse_operator() {
        // Rank-1 sparse matrix: outer product of indicator vectors.
        let m = CscMatrix::from_triplets(4, 4, &[(0, 1, 2.0), (1, 1, 2.0), (2, 1, 2.0), (3, 1, 2.0)])
            .unwrap();
        let svd = randomized_svd(&CscOperator(&m), 2, SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 1);
        assert!((svd.s[0] - 4.0).abs() < 1e-9, "sigma {}", svd.s[0]); // ||col|| = sqrt(4)*2
    }

    #[test]
    fn operator_apply_matches_matrix() {
        let m = CscMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 1, 3.0)]).unwrap();
        let op = CscOperator(&m);
        let mut y = vec![9.0; 3];
        op.apply(&[1.0, 2.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 6.0]);
        let mut yt = vec![9.0; 2];
        op.apply_transpose(&[1.0, 1.0, 1.0], &mut yt);
        assert_eq!(yt, vec![1.0, 3.0]);
    }
}
