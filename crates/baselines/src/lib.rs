//! # kdash-baselines
//!
//! The comparison systems of the paper's evaluation (§6), implemented from
//! their original descriptions:
//!
//! * [`IterativeRwr`] — the textbook power iteration of Equation (1); the
//!   ground truth every precision number is measured against,
//! * [`NbLin`] — NB_LIN (Tong, Faloutsos & Pan, ICDM 2006): low-rank SVD of
//!   the transition matrix plus the Sherman–Morrison–Woodbury identity,
//! * [`BLin`] — B_LIN (same paper): partition the graph, invert the
//!   within-partition blocks exactly, low-rank-approximate only the
//!   cross-partition edges,
//! * [`Bpa`] — the Basic Push Algorithm (Gupta, Pathak & Chakrabarti,
//!   WWW 2008): forward push with precomputed hub vectors and a
//!   recall-guaranteeing stopping rule,
//! * [`LocalRwr`] — the partition-local approximation of Sun et al.
//!   (ICDM 2005): run RWR only inside the query's community,
//! * [`MonteCarlo`] — the random-walk sampler of Avrachenkov et al.
//!   (WAW 2011), which §6 mentions and dismisses for its lack of a recall
//!   guarantee; included as an extension baseline.
//!
//! All engines expose the common [`TopKEngine`] interface so the benchmark
//! harness can sweep them uniformly.

pub mod blin;
pub mod bpa;
pub mod iterative;
pub mod local;
pub mod montecarlo;
pub mod nblin;
pub mod operator;

pub use blin::{BLin, BLinOptions};
pub use bpa::{Bpa, BpaOptions};
pub use iterative::IterativeRwr;
pub use local::LocalRwr;
pub use montecarlo::MonteCarlo;
pub use nblin::{NbLin, NbLinOptions};
pub use operator::CscOperator;

use kdash_graph::NodeId;

/// A scored answer entry.
pub type Scored = (NodeId, f64);

/// Common interface over every engine (exact or approximate).
pub trait TopKEngine {
    /// Human-readable engine name for experiment tables.
    fn name(&self) -> String;

    /// Returns at least `min(k, n)` scored nodes in descending score order.
    /// Approximate engines may return scores that deviate from the true
    /// proximities; [`Bpa`] may return more than `k` nodes (its guarantee
    /// is recall, not precision).
    fn top_k(&self, q: NodeId, k: usize) -> Vec<Scored>;
}

/// Selects the `k` largest entries of a dense score vector, descending,
/// ties broken by ascending node id. Shared by the vector-producing
/// engines.
pub(crate) fn top_k_of_dense(scores: &[f64], k: usize) -> Vec<Scored> {
    let mut pairs: Vec<Scored> =
        scores.iter().enumerate().map(|(i, &s)| (i as NodeId, s)).collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores").then(a.0.cmp(&b.0)));
    pairs.truncate(k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_of_dense_orders_and_breaks_ties() {
        let scores = [0.1, 0.5, 0.5, 0.9, 0.0];
        let top = top_k_of_dense(&scores, 3);
        assert_eq!(top, vec![(3, 0.9), (1, 0.5), (2, 0.5)]);
    }

    #[test]
    fn top_k_of_dense_truncates() {
        assert_eq!(top_k_of_dense(&[1.0], 5).len(), 1);
        assert!(top_k_of_dense(&[], 3).is_empty());
    }
}
