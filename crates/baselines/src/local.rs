//! The partition-local approximation of Sun et al. ("Neighborhood
//! Formation and Anomaly Detection in Bipartite Graphs", ICDM 2005).
//!
//! Exploits the skew of RWR proximities: most of the probability mass of a
//! query stays inside the query's own community, so RWR is run only on the
//! partition containing the query node and every node outside it is
//! assigned proximity 0. Fast, parameter-light, and lossy across
//! partition boundaries — the approximation K-dash's exactness is
//! contrasted against in §2.

use crate::{top_k_of_dense, IterativeRwr, Scored, TopKEngine};
use kdash_community::{louvain, LouvainOptions, Partition};
use kdash_graph::{CsrGraph, NodeId};

/// The precomputed partition-local engine.
pub struct LocalRwr {
    c: f64,
    /// Community assignment of every node.
    partition: Partition,
    /// Per community: member list (global ids) and the induced subgraph.
    communities: Vec<(Vec<NodeId>, CsrGraph)>,
    num_nodes: usize,
}

impl LocalRwr {
    /// Partitions the graph with Louvain and extracts one induced subgraph
    /// per community.
    pub fn build(graph: &CsrGraph, c: f64, seed: u64) -> LocalRwr {
        assert!(c > 0.0 && c < 1.0, "restart probability must be in (0, 1)");
        let partition = louvain(graph, LouvainOptions { seed, ..Default::default() });
        let communities = partition
            .members()
            .into_iter()
            .map(|members| {
                let (sub, map) =
                    graph.induced_subgraph(&members).expect("members are valid and unique");
                (map, sub)
            })
            .collect();
        LocalRwr { c, partition, communities, num_nodes: graph.num_nodes() }
    }

    /// Number of communities the graph was split into.
    pub fn num_communities(&self) -> usize {
        self.communities.len()
    }

    /// Full score vector: exact RWR inside the query's community, zero
    /// everywhere else.
    pub fn full(&self, q: NodeId) -> Vec<f64> {
        assert!((q as usize) < self.num_nodes, "query {q} out of bounds");
        let comm = self.partition.community_of(q) as usize;
        let (members, sub) = &self.communities[comm];
        let local_q = members.binary_search(&q).expect("q belongs to its community") as NodeId;
        let local_p = IterativeRwr::new(sub, self.c).full(local_q);
        let mut p = vec![0.0; self.num_nodes];
        for (&global, &score) in members.iter().zip(&local_p) {
            p[global as usize] = score;
        }
        p
    }
}

impl TopKEngine for LocalRwr {
    fn name(&self) -> String {
        "LocalRWR".into()
    }

    fn top_k(&self, q: NodeId, k: usize) -> Vec<Scored> {
        top_k_of_dense(&self.full(q), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;

    /// Two cliques joined by one weak edge.
    fn clique_pair() -> CsrGraph {
        let mut b = GraphBuilder::new(12);
        for base in [0u32, 6] {
            for i in 0..6 {
                for j in 0..6 {
                    if i != j {
                        b.add_edge(base + i, base + j, 1.0);
                    }
                }
            }
        }
        b.add_undirected_edge(5, 6, 0.1);
        b.build().unwrap()
    }

    #[test]
    fn zero_outside_query_partition() {
        let g = clique_pair();
        let engine = LocalRwr::build(&g, 0.9, 1);
        assert_eq!(engine.num_communities(), 2);
        let p = engine.full(0);
        // All mass inside the first clique.
        for (v, &pv) in p.iter().enumerate().skip(6) {
            assert_eq!(pv, 0.0, "node {v} outside partition must be 0");
        }
        assert!(p[0] > 0.0);
    }

    #[test]
    fn local_scores_close_to_global_inside_community() {
        let g = clique_pair();
        let c = 0.9;
        let local = LocalRwr::build(&g, c, 1);
        let global = IterativeRwr::new(&g, c);
        let pl = local.full(1);
        let pg = global.full(1);
        for v in 0..6 {
            // The weak bridge leaks little mass: local ≈ global.
            assert!((pl[v] - pg[v]).abs() < 0.02, "node {v}: {} vs {}", pl[v], pg[v]);
        }
    }

    #[test]
    fn top_k_stays_in_partition() {
        let g = clique_pair();
        let engine = LocalRwr::build(&g, 0.9, 1);
        let top = engine.top_k(8, 6);
        for (n, _) in &top {
            assert!((6..12).contains(&(*n as usize)), "node {n} from wrong partition");
        }
    }

    #[test]
    fn handles_singleton_communities() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        // node 2 isolated
        let g = b.build().unwrap();
        let engine = LocalRwr::build(&g, 0.8, 2);
        let p = engine.full(2);
        assert!(p[2] > 0.0);
        assert_eq!(p[0], 0.0);
    }
}
