//! The iterative RWR of Equation (1) — the exact reference every
//! approximate engine is scored against, and itself a timing baseline
//! (`O(m·t)` per query).

use crate::{top_k_of_dense, Scored, TopKEngine};
use kdash_graph::{CsrGraph, NodeId};
use kdash_sparse::{rwr::rwr_step, transition_matrix, CscMatrix, DanglingPolicy};

/// Power iteration over `p = (1−c) A p + c e_q` until the L1 change drops
/// below `epsilon` (convergence is geometric with ratio `1−c`, so high
/// restart probabilities converge in a handful of iterations).
#[derive(Debug, Clone)]
pub struct IterativeRwr {
    a: CscMatrix,
    c: f64,
    epsilon: f64,
    max_iterations: usize,
}

impl IterativeRwr {
    /// Builds the engine with a convergence threshold of `1e-12` and an
    /// iteration cap of 10 000.
    pub fn new(graph: &CsrGraph, c: f64) -> Self {
        IterativeRwr::with_tolerance(graph, c, 1e-12, 10_000)
    }

    /// Full control over the convergence parameters.
    pub fn with_tolerance(graph: &CsrGraph, c: f64, epsilon: f64, max_iterations: usize) -> Self {
        assert!(c > 0.0 && c < 1.0, "restart probability must be in (0, 1)");
        IterativeRwr {
            a: transition_matrix(graph, DanglingPolicy::Keep),
            c,
            epsilon,
            max_iterations,
        }
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.a.ncols()
    }

    /// The full converged proximity vector for `q`.
    pub fn full(&self, q: NodeId) -> Vec<f64> {
        let n = self.num_nodes();
        assert!((q as usize) < n, "query {q} out of bounds");
        let mut p = vec![0.0; n];
        p[q as usize] = 1.0;
        let mut next = vec![0.0; n];
        for _ in 0..self.max_iterations {
            rwr_step(&self.a, self.c, q, &p, &mut next);
            let delta: f64 = p.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut p, &mut next);
            if delta < self.epsilon {
                break;
            }
        }
        p
    }
}

impl TopKEngine for IterativeRwr {
    fn name(&self) -> String {
        "Iterative".into()
    }

    fn top_k(&self, q: NodeId, k: usize) -> Vec<Scored> {
        top_k_of_dense(&self.full(q), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;

    fn cycle(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            b.add_edge(v as NodeId, ((v + 1) % n) as NodeId, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn cycle_has_geometric_proximities() {
        // On a directed cycle p_(q+d) = c (1-c)^d / (1 - (1-c)^n).
        let n = 6;
        let c = 0.5;
        let engine = IterativeRwr::new(&cycle(n), c);
        let p = engine.full(0);
        let norm = 1.0 - (1.0f64 - c).powi(n as i32);
        for (d, &pd) in p.iter().enumerate() {
            let expect = c * (1.0f64 - c).powi(d as i32) / norm;
            assert!((pd - expect).abs() < 1e-10, "d={d}: {pd} vs {expect}");
        }
    }

    #[test]
    fn top_k_is_sorted_and_starts_at_query() {
        let engine = IterativeRwr::new(&cycle(8), 0.9);
        let top = engine.top_k(3, 4);
        assert_eq!(top[0].0, 3);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(top.len(), 4);
    }

    #[test]
    fn proximities_sum_to_one_on_stochastic_graph() {
        let engine = IterativeRwr::new(&cycle(10), 0.7);
        let sum: f64 = engine.full(2).iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn handles_dangling_nodes() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        let g = b.build().unwrap();
        let engine = IterativeRwr::new(&g, 0.8);
        let p = engine.full(0);
        assert!(p[0] > p[1] && p[1] == p[2]);
        assert!(p.iter().sum::<f64>() < 1.0, "dangling leak expected");
    }

    #[test]
    #[should_panic(expected = "restart probability")]
    fn invalid_c_panics() {
        IterativeRwr::new(&cycle(4), 1.5);
    }
}
