//! B_LIN (Tong, Faloutsos & Pan, ICDM 2006).
//!
//! Splits the transition matrix along a graph partition:
//! `A = A₁ + A₂` with `A₁` the within-partition edges (block diagonal
//! after the partition ordering) and `A₂` the cross-partition edges. The
//! within-part `W₁ = I − (1−c)A₁` is inverted *exactly* block by block;
//! only `A₂` is low-rank approximated (`A₂ ≈ U S Vᵀ`), then
//! Sherman–Morrison–Woodbury gives
//!
//! ```text
//! W⁻¹ ≈ W₁⁻¹ + (1−c) W₁⁻¹ U M Vᵀ W₁⁻¹,
//! M    = (S⁻¹ − (1−c) Vᵀ W₁⁻¹ U)⁻¹
//! p̂    = c [ q̃ + (1−c) W₁⁻¹ U M Vᵀ q̃ ],   q̃ = W₁⁻¹ e_q
//! ```
//!
//! The paper partitions with METIS; this reproduction uses Louvain (see
//! DESIGN.md). Oversized communities are chunked so the dense per-block
//! inverses stay tractable.

use crate::{top_k_of_dense, CscOperator, Scored, TopKEngine};
use kdash_community::{louvain, LouvainOptions};
use kdash_graph::{CsrGraph, NodeId};
use kdash_linalg::{invert_dense, randomized_svd, DenseMatrix, LinalgError, SvdOptions};
use kdash_sparse::{transition_matrix, CscMatrix, DanglingPolicy};

/// B_LIN tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct BLinOptions {
    /// Target rank of the cross-partition approximation.
    pub target_rank: usize,
    /// Restart probability.
    pub restart_probability: f64,
    /// Blocks larger than this are split (dense inversion is `O(b³)`).
    pub max_block_size: usize,
    /// Seed for partitioning and the SVD sketch.
    pub seed: u64,
}

impl Default for BLinOptions {
    fn default() -> Self {
        BLinOptions { target_rank: 100, restart_probability: 0.95, max_block_size: 600, seed: 7 }
    }
}

/// The precomputed B_LIN engine.
pub struct BLin {
    c: f64,
    target_rank: usize,
    /// Node -> (block index, offset inside the block).
    placement: Vec<(u32, u32)>,
    /// Members of every block, in block-local order.
    blocks: Vec<Vec<NodeId>>,
    /// Dense inverse of each diagonal block of `W₁`.
    block_inv: Vec<DenseMatrix>,
    /// Low-rank factors of the cross-partition part.
    u: DenseMatrix,
    vt: DenseMatrix,
    /// SMW core `M`.
    m: DenseMatrix,
}

impl BLin {
    /// Offline phase: partition, per-block dense inverses, cross-edge SVD,
    /// SMW core.
    pub fn build(graph: &CsrGraph, options: BLinOptions) -> Result<BLin, LinalgError> {
        let c = options.restart_probability;
        assert!(c > 0.0 && c < 1.0, "restart probability must be in (0, 1)");
        let n = graph.num_nodes();
        let a = transition_matrix(graph, DanglingPolicy::Keep);

        // Partition and chunk oversized communities.
        let partition = louvain(graph, LouvainOptions { seed: options.seed, ..Default::default() });
        let mut blocks: Vec<Vec<NodeId>> = Vec::new();
        for members in partition.members() {
            for chunk in members.chunks(options.max_block_size.max(1)) {
                if !chunk.is_empty() {
                    blocks.push(chunk.to_vec());
                }
            }
        }
        if blocks.is_empty() && n > 0 {
            blocks.push((0..n as NodeId).collect());
        }
        let mut placement = vec![(0u32, 0u32); n];
        for (bi, block) in blocks.iter().enumerate() {
            for (off, &v) in block.iter().enumerate() {
                placement[v as usize] = (bi as u32, off as u32);
            }
        }

        // Split A into within-block and cross-block triplets.
        let mut cross: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let mut block_inv = Vec::with_capacity(blocks.len());
        for (bidx, block) in blocks.iter().enumerate() {
            let b = block.len();
            let mut w1 = DenseMatrix::identity(b);
            for (j_off, &v) in block.iter().enumerate() {
                let (rows, vals) = a.col(v);
                for (&r, &val) in rows.iter().zip(vals) {
                    let (bi, off) = placement[r as usize];
                    if bi as usize == bidx {
                        let old = w1.get(off as usize, j_off);
                        w1.set(off as usize, j_off, old - (1.0 - c) * val);
                    } else {
                        cross.push((r, v, val));
                    }
                }
            }
            // W1 block is strictly column diagonally dominant -> invertible.
            block_inv.push(invert_dense(&w1)?);
        }
        let a2 = CscMatrix::from_triplets(n, n, &cross)
            .expect("cross edges are in range with finite values");

        // Low-rank factor of A2 (skip when there are no cross edges).
        let (u, vt, m) = if a2.nnz() == 0 {
            (DenseMatrix::zeros(n, 0), DenseMatrix::zeros(0, n), DenseMatrix::zeros(0, 0))
        } else {
            let svd = randomized_svd(
                &CscOperator(&a2),
                options.target_rank,
                SvdOptions { seed: options.seed, ..SvdOptions::default() },
            )?;
            let r = svd.rank();
            if r == 0 {
                (DenseMatrix::zeros(n, 0), DenseMatrix::zeros(0, n), DenseMatrix::zeros(0, 0))
            } else {
                // M = (S^{-1} − (1−c) Vᵀ W1⁻¹ U)^{-1}
                let mut w1inv_u = DenseMatrix::zeros(n, r);
                let mut col = vec![0.0; n];
                for j in 0..r {
                    for (i, c_) in col.iter_mut().enumerate() {
                        *c_ = svd.u.get(i, j);
                    }
                    let applied = apply_block_inverse(&blocks, &block_inv, &col);
                    w1inv_u.set_col(j, &applied);
                }
                let vtwu = svd.vt.matmul(&w1inv_u)?;
                let mut core = DenseMatrix::from_fn(r, r, |i, j| -(1.0 - c) * vtwu.get(i, j));
                for i in 0..r {
                    core.set(i, i, core.get(i, i) + 1.0 / svd.s[i]);
                }
                (w1inv_u, svd.vt, invert_dense(&core)?)
            }
        };

        Ok(BLin { c, target_rank: options.target_rank, placement, blocks, block_inv, u, vt, m })
    }

    /// Effective rank of the cross-partition approximation.
    pub fn rank(&self) -> usize {
        self.m.nrows()
    }

    /// Number of partition blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The full approximate proximity vector.
    pub fn full(&self, q: NodeId) -> Vec<f64> {
        let n = self.placement.len();
        assert!((q as usize) < n, "query {q} out of bounds");
        // q̃ = W1⁻¹ e_q: column of q's block inverse, scattered.
        let (bi, off) = self.placement[q as usize];
        let block = &self.blocks[bi as usize];
        let inv = &self.block_inv[bi as usize];
        let mut q_tilde = vec![0.0; n];
        for (row_off, &node) in block.iter().enumerate() {
            q_tilde[node as usize] = inv.get(row_off, off as usize);
        }
        let mut p = q_tilde.clone();
        if self.rank() > 0 {
            // y = Vᵀ q̃ ; z = M y ; w = (W1⁻¹U) z ; p̂ += (1−c)·w
            let y = self.vt.matvec(&q_tilde).expect("vt is r x n");
            let z = self.m.matvec(&y).expect("m is r x r");
            let w = self.u.matvec(&z).expect("u is n x r");
            for (pi, &wi) in p.iter_mut().zip(&w) {
                *pi += (1.0 - self.c) * wi;
            }
        }
        for pi in &mut p {
            *pi *= self.c;
        }
        p
    }
}

/// Applies the block-diagonal inverse to a dense vector.
fn apply_block_inverse(
    blocks: &[Vec<NodeId>],
    block_inv: &[DenseMatrix],
    x: &[f64],
) -> Vec<f64> {
    let mut out = vec![0.0; x.len()];
    for (block, inv) in blocks.iter().zip(block_inv) {
        let local: Vec<f64> = block.iter().map(|&v| x[v as usize]).collect();
        let applied = inv.matvec(&local).expect("square block");
        for (&v, &val) in block.iter().zip(&applied) {
            out[v as usize] = val;
        }
    }
    out
}

impl TopKEngine for BLin {
    fn name(&self) -> String {
        format!("B_LIN({})", self.target_rank)
    }

    fn top_k(&self, q: NodeId, k: usize) -> Vec<Scored> {
        top_k_of_dense(&self.full(q), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterativeRwr;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// Two communities with a few cross links.
    fn community_graph(seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(60);
        for base in [0u32, 30] {
            for _ in 0..150 {
                let u = base + rng.gen_range(0..30);
                let v = base + rng.gen_range(0..30);
                if u != v {
                    b.add_edge(u, v, 1.0);
                }
            }
        }
        for _ in 0..6 {
            let u = rng.gen_range(0..30);
            let v = 30 + rng.gen_range(0..30);
            b.add_edge(u, v, 1.0);
            b.add_edge(v, u, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn near_exact_with_full_cross_rank() {
        let g = community_graph(1);
        let c = 0.9;
        let blin = BLin::build(
            &g,
            BLinOptions { target_rank: 60, restart_probability: c, ..Default::default() },
        )
        .unwrap();
        let exact = IterativeRwr::new(&g, c);
        for q in [0u32, 31, 59] {
            let approx = blin.full(q);
            let truth = exact.full(q);
            for (i, (a, t)) in approx.iter().zip(&truth).enumerate() {
                assert!((a - t).abs() < 1e-5, "q={q} node {i}: {a} vs {t}");
            }
        }
    }

    #[test]
    fn no_cross_edges_is_exact_without_svd() {
        // Two disconnected cliques: A2 empty, block inverses do it all.
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        b.add_edge(base + i, base + j, 1.0);
                    }
                }
            }
        }
        let g = b.build().unwrap();
        let c = 0.85;
        let blin = BLin::build(
            &g,
            BLinOptions { restart_probability: c, ..Default::default() },
        )
        .unwrap();
        assert_eq!(blin.rank(), 0);
        let exact = IterativeRwr::new(&g, c);
        for q in 0..8u32 {
            let approx = blin.full(q);
            let truth = exact.full(q);
            for (a, t) in approx.iter().zip(&truth) {
                assert!((a - t).abs() < 1e-10, "{a} vs {t}");
            }
        }
    }

    #[test]
    fn block_chunking_respects_cap() {
        let g = community_graph(3);
        let blin = BLin::build(
            &g,
            BLinOptions { max_block_size: 10, ..Default::default() },
        )
        .unwrap();
        assert!(blin.num_blocks() >= 6, "60 nodes / cap 10");
        for block in &blin.blocks {
            assert!(block.len() <= 10);
        }
    }

    #[test]
    fn top_k_query_first() {
        let g = community_graph(5);
        let blin = BLin::build(&g, BLinOptions::default()).unwrap();
        let top = blin.top_k(12, 5);
        assert_eq!(top[0].0, 12);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
