//! Basic Push Algorithm for top-k Personalized PageRank
//! (Gupta, Pathak & Chakrabarti, WWW 2008).
//!
//! Maintains the push invariant
//! `p = est + Σ_w r(w) · p⁽ʷ⁾` where `p⁽ʷ⁾` is the RWR vector started at
//! `w`, derived from the column identity
//! `p⁽ʷ⁾ = c·e_w + (1−c)·Σ_u A_uw · p⁽ᵘ⁾`.
//! Pushing the node with the largest residual either expands it along its
//! out-edges or — when the node is one of the `H` precomputed *hub*
//! nodes — consumes its residual in one shot by adding `r(w)·p⁽ʷ⁾`
//! exactly.
//!
//! Because `p⁽ʷ⁾(u) ≤ 1`, `est(u) + R` (with `R` the total outstanding
//! residual) upper-bounds every proximity, which yields a stopping rule
//! with guaranteed recall: once the K-th best estimate exceeds
//! `est(u) + R` for every other `u`, the true top-k set is inside the
//! returned set. As the paper notes, the answer set may therefore contain
//! *more* than `k` nodes, and its internal ranking is approximate.

use crate::{IterativeRwr, Scored, TopKEngine};
use kdash_graph::{CsrGraph, NodeId};
use kdash_sparse::{transition_matrix, CscMatrix, DanglingPolicy};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// BPA tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct BpaOptions {
    /// Number of hub nodes with precomputed exact vectors (Figure 3/4
    /// sweep this from 100 to 1 000).
    pub num_hubs: usize,
    /// Restart probability.
    pub restart_probability: f64,
    /// Push-step budget per query before declaring convergence-by-budget
    /// (the answer is still returned from the estimates).
    pub max_pushes: usize,
}

impl Default for BpaOptions {
    fn default() -> Self {
        BpaOptions { num_hubs: 100, restart_probability: 0.95, max_pushes: 500_000 }
    }
}

/// The precomputed BPA engine.
pub struct Bpa {
    a: CscMatrix,
    c: f64,
    num_hubs: usize,
    /// `hub_vector[v]` = Some(full exact RWR vector of v) for hub nodes.
    hub_vector: Vec<Option<Vec<f64>>>,
    max_pushes: usize,
}

/// Max-heap entry ordered by residual value.
struct QueueEntry(f64, NodeId);

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0 && self.1 == other.1
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("finite residuals").then(self.1.cmp(&other.1))
    }
}

impl Bpa {
    /// Offline phase: pick the `num_hubs` highest-total-degree nodes and
    /// compute their exact RWR vectors (power iteration; with `c = 0.95`
    /// convergence takes a handful of sparse matvecs per hub).
    pub fn build(graph: &CsrGraph, options: BpaOptions) -> Bpa {
        let c = options.restart_probability;
        assert!(c > 0.0 && c < 1.0, "restart probability must be in (0, 1)");
        let n = graph.num_nodes();
        let mut by_degree: Vec<NodeId> = (0..n as NodeId).collect();
        let degrees = graph.total_degrees();
        by_degree.sort_by_key(|&v| std::cmp::Reverse((degrees[v as usize], v)));
        let solver = IterativeRwr::new(graph, c);
        let mut hub_vector: Vec<Option<Vec<f64>>> = vec![None; n];
        for &h in by_degree.iter().take(options.num_hubs.min(n)) {
            hub_vector[h as usize] = Some(solver.full(h));
        }
        Bpa {
            a: transition_matrix(graph, DanglingPolicy::Keep),
            c,
            num_hubs: options.num_hubs,
            hub_vector,
            max_pushes: options.max_pushes,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.a.ncols()
    }

    /// Runs the push process for query `q` until the top-k stopping rule
    /// fires (or the push budget runs out). Returns the estimate vector
    /// and the outstanding residual mass `R`.
    fn push_until_stable(&self, q: NodeId, k: usize) -> (Vec<f64>, f64) {
        let n = self.num_nodes();
        assert!((q as usize) < n, "query {q} out of bounds");
        let mut est = vec![0.0f64; n];
        let mut residual = vec![0.0f64; n];
        residual[q as usize] = 1.0;
        let mut total_r = 1.0f64;
        let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::new();
        queue.push(QueueEntry(1.0, q));
        let mut pushes = 0usize;
        let check_interval = 64usize;

        while let Some(QueueEntry(rw, w)) = queue.pop() {
            if residual[w as usize] != rw || rw <= 0.0 {
                continue; // stale entry
            }
            residual[w as usize] = 0.0;
            if let Some(hub) = &self.hub_vector[w as usize] {
                // Consume the residual exactly through the hub vector.
                for (e, hv) in est.iter_mut().zip(hub) {
                    *e += rw * hv;
                }
                total_r -= rw;
            } else {
                est[w as usize] += self.c * rw;
                let spread = (1.0 - self.c) * rw;
                let (rows, vals) = self.a.col(w);
                for (&u, &a_uw) in rows.iter().zip(vals) {
                    let nu = residual[u as usize] + spread * a_uw;
                    residual[u as usize] = nu;
                    queue.push(QueueEntry(nu, u));
                }
                // Mass conservation: c·rw became estimate; dangling columns
                // lose the rest.
                let col_sum: f64 = vals.iter().sum();
                total_r -= rw - spread * col_sum;
            }
            pushes += 1;
            if pushes % check_interval == 0 || queue.is_empty() {
                if self.stopping_rule(&est, total_r, k) {
                    break;
                }
                if pushes >= self.max_pushes {
                    break;
                }
            }
        }
        (est, total_r.max(0.0))
    }

    /// True when the K-th best estimate dominates `est(u) + R` for every
    /// node outside the current top-k — the recall-1 condition.
    fn stopping_rule(&self, est: &[f64], total_r: f64, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        // Find the k-th and (k+1)-th largest estimates.
        let mut top: Vec<f64> = est.to_vec();
        let idx = k.min(top.len().saturating_sub(1));
        top.select_nth_unstable_by(idx, |a, b| b.partial_cmp(a).expect("finite"));
        let kth = if k <= top.len() { top[k - 1] } else { 0.0 };
        let next = if k < top.len() { top[k] } else { 0.0 };
        kth >= next + total_r
    }
}

impl TopKEngine for Bpa {
    fn name(&self) -> String {
        format!("BPA({})", self.num_hubs)
    }

    /// Returns every node whose upper bound `est(u) + R` reaches the K-th
    /// best estimate — at least `k` nodes (recall ≥ 1 of the true top-k
    /// when the stopping rule fired), possibly more.
    fn top_k(&self, q: NodeId, k: usize) -> Vec<Scored> {
        let (est, total_r) = self.push_until_stable(q, k);
        let mut pairs: Vec<Scored> =
            est.iter().enumerate().map(|(i, &s)| (i as NodeId, s)).collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        if pairs.len() <= k {
            return pairs;
        }
        let theta = pairs[k - 1].1;
        let cut = pairs.iter().position(|&(_, s)| s + total_r < theta).unwrap_or(pairs.len());
        pairs.truncate(cut.max(k));
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(n: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..rng.gen_range(2..6) {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, 1.0);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn recall_of_true_top_k_is_one() {
        let g = random_graph(80, 3);
        let c = 0.9;
        let bpa = Bpa::build(
            &g,
            BpaOptions { num_hubs: 20, restart_probability: c, ..Default::default() },
        );
        let exact = IterativeRwr::new(&g, c);
        for q in [0u32, 33, 79] {
            let k = 5;
            let truth: Vec<NodeId> = exact.top_k(q, k).iter().map(|&(n, _)| n).collect();
            let answer: Vec<NodeId> = bpa.top_k(q, k).iter().map(|&(n, _)| n).collect();
            for t in &truth {
                assert!(answer.contains(t), "q={q}: true answer {t} missing from {answer:?}");
            }
        }
    }

    #[test]
    fn may_return_more_than_k() {
        let g = random_graph(60, 5);
        let bpa = Bpa::build(&g, BpaOptions { num_hubs: 5, ..Default::default() });
        let ans = bpa.top_k(7, 5);
        assert!(ans.len() >= 5);
    }

    #[test]
    fn all_hubs_makes_queries_one_shot() {
        // Every node a hub: the very first pop consumes everything.
        let g = random_graph(40, 7);
        let c = 0.9;
        let bpa = Bpa::build(
            &g,
            BpaOptions { num_hubs: 40, restart_probability: c, ..Default::default() },
        );
        let exact = IterativeRwr::new(&g, c);
        for q in [3u32, 21] {
            let (est, r) = bpa.push_until_stable(q, 5);
            assert!(r < 1e-9, "residual {r} should be fully consumed");
            let truth = exact.full(q);
            for (a, b) in est.iter().zip(&truth) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn zero_hubs_still_converges() {
        let g = random_graph(50, 9);
        let bpa = Bpa::build(&g, BpaOptions { num_hubs: 0, ..Default::default() });
        let exact = IterativeRwr::new(&g, 0.95);
        let truth: Vec<NodeId> = exact.top_k(11, 5).iter().map(|&(n, _)| n).collect();
        let ans: Vec<NodeId> = bpa.top_k(11, 5).iter().map(|&(n, _)| n).collect();
        for t in &truth {
            assert!(ans.contains(t), "missing {t}");
        }
    }

    #[test]
    fn hub_selection_prefers_high_degree() {
        let mut b = GraphBuilder::new(10);
        for t in 1..10 {
            b.add_undirected_edge(0, t, 1.0); // node 0 is the star hub
        }
        let g = b.build().unwrap();
        let bpa = Bpa::build(&g, BpaOptions { num_hubs: 1, ..Default::default() });
        assert!(bpa.hub_vector[0].is_some());
        assert!(bpa.hub_vector[1].is_none());
    }
}
