//! NB_LIN (Tong, Faloutsos & Pan, "Fast Random Walk with Restart and Its
//! Applications", ICDM 2006).
//!
//! Approximates the transition matrix with a rank-`t` SVD, `A ≈ U S Vᵀ`,
//! and applies the Sherman–Morrison–Woodbury identity to Equation (2):
//!
//! ```text
//! W⁻¹ = (I − (1−c) U S Vᵀ)⁻¹ = I + (1−c) U Λ Vᵀ,
//! Λ   = (S⁻¹ − (1−c) Vᵀ U)⁻¹                      (t x t)
//! p̂   = c e_q + c (1−c) U Λ (Vᵀ e_q)
//! ```
//!
//! Per query: `O(n·t + t²)` — the `O(n²)` of the paper's Theorem 3 once
//! `t` grows with `n`. Precision and speed both rise with the target rank,
//! which is exactly the trade-off Figures 3 and 4 sweep.

use crate::{top_k_of_dense, CscOperator, Scored, TopKEngine};
use kdash_graph::{CsrGraph, NodeId};
use kdash_linalg::{invert_dense, randomized_svd, DenseMatrix, LinalgError, SvdOptions};
use kdash_sparse::{transition_matrix, DanglingPolicy};

/// NB_LIN tuning parameters.
#[derive(Debug, Clone, Copy)]
pub struct NbLinOptions {
    /// Target rank `t` of the low-rank approximation (the paper's only
    /// NB_LIN knob; Figure 3/4 sweep it from 100 to 1 000).
    pub target_rank: usize,
    /// Restart probability.
    pub restart_probability: f64,
    /// Seed for the randomized SVD sketch.
    pub seed: u64,
}

impl Default for NbLinOptions {
    fn default() -> Self {
        NbLinOptions { target_rank: 100, restart_probability: 0.95, seed: 7 }
    }
}

/// The precomputed NB_LIN engine.
#[derive(Debug, Clone)]
pub struct NbLin {
    c: f64,
    target_rank: usize,
    /// Left singular vectors, `n x r`.
    u: DenseMatrix,
    /// Right singular vectors transposed, `r x n`.
    vt: DenseMatrix,
    /// `Λ = (S⁻¹ − (1−c) Vᵀ U)⁻¹`, `r x r`.
    lambda: DenseMatrix,
}

impl NbLin {
    /// Runs the offline phase: SVD plus the small SMW core inverse.
    pub fn build(graph: &CsrGraph, options: NbLinOptions) -> Result<NbLin, LinalgError> {
        let c = options.restart_probability;
        assert!(c > 0.0 && c < 1.0, "restart probability must be in (0, 1)");
        let a = transition_matrix(graph, DanglingPolicy::Keep);
        let svd = randomized_svd(
            &CscOperator(&a),
            options.target_rank,
            SvdOptions { seed: options.seed, ..SvdOptions::default() },
        )?;
        let r = svd.rank();
        if r == 0 {
            // Edgeless graph: A ≈ 0, so p̂ = c e_q exactly.
            return Ok(NbLin {
                c,
                target_rank: options.target_rank,
                u: DenseMatrix::zeros(graph.num_nodes(), 0),
                vt: DenseMatrix::zeros(0, graph.num_nodes()),
                lambda: DenseMatrix::zeros(0, 0),
            });
        }
        // Λ = (S^{-1} - (1-c) Vᵀ U)^{-1}
        let vtu = svd.vt.matmul(&svd.u)?;
        let mut core = DenseMatrix::from_fn(r, r, |i, j| -(1.0 - c) * vtu.get(i, j));
        for i in 0..r {
            core.set(i, i, core.get(i, i) + 1.0 / svd.s[i]);
        }
        let lambda = invert_dense(&core)?;
        Ok(NbLin { c, target_rank: options.target_rank, u: svd.u, vt: svd.vt, lambda })
    }

    /// Effective rank actually used (≤ target rank).
    pub fn rank(&self) -> usize {
        self.lambda.nrows()
    }

    /// The full approximate proximity vector.
    pub fn full(&self, q: NodeId) -> Vec<f64> {
        let n = self.u.nrows();
        assert!((q as usize) < n, "query {q} out of bounds");
        let mut p = vec![0.0; n];
        p[q as usize] = self.c;
        if self.rank() == 0 {
            return p;
        }
        // v_q = Vᵀ e_q (column q of vt), r = Λ v_q, p̂ += c(1−c) U r.
        let vq: Vec<f64> = (0..self.rank()).map(|i| self.vt.get(i, q as usize)).collect();
        let r = self.lambda.matvec(&vq).expect("lambda is r x r");
        let ur = self.u.matvec(&r).expect("u is n x r");
        let scale = self.c * (1.0 - self.c);
        for (pi, &v) in p.iter_mut().zip(&ur) {
            *pi += scale * v;
        }
        p
    }
}

impl TopKEngine for NbLin {
    fn name(&self) -> String {
        format!("NB_LIN({})", self.target_rank)
    }

    fn top_k(&self, q: NodeId, k: usize) -> Vec<Scored> {
        top_k_of_dense(&self.full(q), k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IterativeRwr;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(n: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..rng.gen_range(2..6) {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, 1.0);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn full_rank_is_nearly_exact() {
        // With target rank = n the SMW identity is exact up to SVD error.
        let g = random_graph(30, 1);
        let c = 0.9;
        let nblin = NbLin::build(
            &g,
            NbLinOptions { target_rank: 30, restart_probability: c, seed: 2 },
        )
        .unwrap();
        let exact = IterativeRwr::new(&g, c);
        for q in [0u32, 14, 29] {
            let approx = nblin.full(q);
            let truth = exact.full(q);
            for (a, t) in approx.iter().zip(&truth) {
                assert!((a - t).abs() < 1e-6, "{a} vs {t}");
            }
        }
    }

    #[test]
    fn precision_improves_with_rank() {
        let g = random_graph(120, 3);
        let c = 0.9;
        let exact = IterativeRwr::new(&g, c);
        let k = 10;
        let mut scores = Vec::new();
        for rank in [4usize, 110] {
            let nblin = NbLin::build(
                &g,
                NbLinOptions { target_rank: rank, restart_probability: c, seed: 5 },
            )
            .unwrap();
            let mut hits = 0usize;
            let mut total = 0usize;
            for q in (0..120u32).step_by(17) {
                let truth: Vec<NodeId> = exact.top_k(q, k).iter().map(|&(n, _)| n).collect();
                let approx = nblin.top_k(q, k);
                hits += approx.iter().filter(|(n, _)| truth.contains(n)).count();
                total += k;
            }
            scores.push(hits as f64 / total as f64);
        }
        assert!(
            scores[1] >= scores[0],
            "precision should not degrade with rank: {scores:?}"
        );
        // Rank 110 of 120 still discards a non-trivial spectral tail on a
        // random graph, so "accurate" here means clearly better than the
        // low-rank run, not exact.
        assert!(scores[1] > 0.8, "near-full rank should be accurate: {scores:?}");
        assert!(scores[0] < 0.6, "rank 4 should be visibly lossy: {scores:?}");
    }

    #[test]
    fn query_node_always_scored_first_for_high_c() {
        let g = random_graph(50, 9);
        let nblin = NbLin::build(&g, NbLinOptions::default()).unwrap();
        let top = nblin.top_k(21, 5);
        assert_eq!(top[0].0, 21);
    }

    #[test]
    fn edgeless_graph_degenerates_gracefully() {
        let g = GraphBuilder::new(5).build().unwrap();
        let nblin = NbLin::build(&g, NbLinOptions::default()).unwrap();
        assert_eq!(nblin.rank(), 0);
        let p = nblin.full(2);
        assert_eq!(p[2], 0.95);
        assert_eq!(p.iter().filter(|&&x| x != 0.0).count(), 1);
    }

    #[test]
    fn name_carries_rank() {
        let g = random_graph(20, 4);
        let nblin =
            NbLin::build(&g, NbLinOptions { target_rank: 17, ..Default::default() }).unwrap();
        assert_eq!(nblin.name(), "NB_LIN(17)");
    }
}
