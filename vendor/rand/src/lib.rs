//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors exactly the surface its code uses:
//!
//! * [`rngs::StdRng`] — a deterministic generator (xoshiro256++ seeded by
//!   splitmix64),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen_range`] over integer and `f64` ranges, [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic per seed and statistically sound (the
//! generators' sampling tests pass), but they are **not** the upstream
//! `rand` streams — this crate trades stream compatibility for an offline
//! build. Everything in the workspace that consumes randomness goes through
//! seeds, so swapping back to the real crate only changes which particular
//! random graphs the tests see.

pub mod rngs {
    pub use crate::std_rng::StdRng;
}
pub mod seq;
mod std_rng;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive; integers or
    /// `f64`). Panics on an empty range, like the real crate.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that knows how to sample itself — the plumbing behind
/// [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler. The generic [`SampleRange`] impls below
/// tie the range's element type to the output type, which is what lets
/// integer literals in `gen_range(0..20)` infer from the use site (exactly
/// like the real crate).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Uniform integer in `[0, span)` via 128-bit multiply-shift (Lemire).
#[inline]
fn sample_span<R: RngCore>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    // One multiply-shift draw; bias is < 2^-64 relative — irrelevant for
    // the graph generators and tests this backs.
    (u128::from(rng.next_u64()) * span) >> 64
}

macro_rules! impl_int_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128;
                (base + sample_span(rng, span) as i128) as $t
            }
            #[inline]
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let base = lo as i128;
                let span = (hi as i128 - base) as u128 + 1;
                (base + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "cannot sample empty or non-finite range"
        );
        let v = lo + rng.next_f64() * (hi - lo);
        // Rounding can land exactly on the excluded endpoint; fold it back.
        if v < hi {
            v
        } else {
            lo
        }
    }
    #[inline]
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad range");
        let v = lo + rng.next_f64() as f32 * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
    #[inline]
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: f32, hi: f32) -> f32 {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + rng.next_f64() as f32 * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000usize), b.gen_range(0..1_000_000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..32).all(|_| {
            StdRng::seed_from_u64(7);
            a.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)
        });
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_rough_but_real() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5..5usize);
    }
}
