//! Slice helpers (`shuffle`, `choose`), mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Random slice operations. Only the members the workspace uses
/// (`choose` entered with the dynamic-update edit-batch generators).
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn choose_is_uniformish_and_total() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u32; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v: Vec<u32> = (0..8).collect();
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[*v.choose(&mut rng).unwrap() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 draws over 8 slots must hit every slot");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle staying sorted is ~impossible");
    }
}
