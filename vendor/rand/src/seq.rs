//! Slice helpers (`shuffle`), mirroring `rand::seq`.

use crate::{Rng, RngCore};

/// Random slice operations. Only the members the workspace uses.
pub trait SliceRandom {
    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rngs::StdRng, SeedableRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle staying sorted is ~impossible");
    }
}
