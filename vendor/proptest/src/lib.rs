//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with [`prop_map`](Strategy::prop_map) and
//! [`prop_flat_map`](Strategy::prop_flat_map), range and tuple strategies,
//! [`Just`], [`any`], [`collection::vec`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from the real crate: cases are drawn from a fixed
//! deterministic seed (no persistence file), and failing cases are
//! reported but **not shrunk**. Every failure message carries the case
//! number, and re-running is fully reproducible.

use rand::{rngs::StdRng, Rng};

pub mod collection;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value. (The real crate builds a shrinkable tree; this
    /// stand-in draws directly.)
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.gen_range(0..=u32::MAX)
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.gen_range(0..=u64::MAX)
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> usize {
        rng.gen_range(0..=usize::MAX)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut StdRng) -> [T; N] {
        core::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy for any value of `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The result type test bodies produce; `prop_assert!` returns `Err`.
pub type TestCaseResult = Result<(), String>;

/// Boolean property assertion; fails the current case without panicking
/// mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                ::std::format!("prop_assert failed: {}", ::core::stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!(
                "prop_assert_eq failed: {:?} != {:?}",
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Declares property tests. Supports the forms
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn name(x in strategy, (a, b) in tuple_strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // One deterministic stream per test fn, derived from its name.
            let mut rng = $crate::__seed_rng(::core::stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(message) = outcome {
                    ::core::panic!(
                        "property `{}` failed at case {}/{}: {}",
                        ::core::stringify!($name), case + 1, config.cases, message
                    );
                }
            }
        }
    )*};
}

#[doc(hidden)]
pub fn __seed_rng(test_name: &str) -> StdRng {
    use rand::SeedableRng;
    // FNV-1a over the test name: stable across runs and rustc versions.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, 5u32..9), f in 0.0f64..1.0) {
            prop_assert!(a < 10);
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_flat_map(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..100, n..n + 1)
        }).prop_map(|v| v.len())) {
            prop_assert!((1..5).contains(&v));
        }

        #[test]
        fn just_and_any(j in Just(41usize), x in any::<u32>()) {
            prop_assert_eq!(j, 41);
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
