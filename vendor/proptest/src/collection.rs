//! Collection strategies (`vec`), mirroring `proptest::collection`.

use crate::Strategy;
use rand::{rngs::StdRng, Rng};

/// Strategy for a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.start >= self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
