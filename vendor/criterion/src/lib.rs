//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`bench_with_input`](BenchmarkGroup::bench_with_input) /
//! [`sample_size`](BenchmarkGroup::sample_size), [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`] and the `criterion_group!` /
//! `criterion_main!` macros — on top of plain `std::time::Instant`
//! measurements. No statistics engine, no HTML reports: each benchmark
//! prints a single summary line
//!
//! ```text
//! bench <group>/<id>: median <ns> ns/iter, mean <ns> ns/iter (<samples> samples)
//! ```
//!
//! Tuning via environment variables: `KDASH_BENCH_BUDGET_MS` caps the
//! measurement time per benchmark (default 2000), `KDASH_BENCH_WARMUP_MS`
//! the warm-up time (default 300).

use std::time::{Duration, Instant};

/// Identity function the optimiser must treat as opaque.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level handle, one per bench binary.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 50 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: std::marker::PhantomData,
        }
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        bencher.report(&self.name, &id.into().label);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        bencher.report(&self.name, &id.label);
        self
    }

    /// Ends the group (the real crate finalises reports here).
    pub fn finish(self) {}
}

fn env_ms(key: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default),
    )
}

/// Measures one routine: warm-up, then timed samples.
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { sample_size, samples: Vec::new() }
    }

    /// Times `routine`, running it repeatedly: a warm-up phase, then up to
    /// `sample_size` samples (each a batch sized to ~1 ms) within the time
    /// budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warmup = env_ms("KDASH_BENCH_WARMUP_MS", 300);
        let budget = env_ms("KDASH_BENCH_BUDGET_MS", 2000);

        // Warm-up: also yields a first estimate of the iteration time.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warmup || warm_iters < 3 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Batch so one sample costs ~1 ms — keeps timer overhead < 0.1 %.
        let batch = ((1_000_000.0 / est_ns).ceil() as u64).max(1);

        self.samples.clear();
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples.push(dt.as_nanos() as f64 / batch as f64);
            if run_start.elapsed() > budget {
                break;
            }
        }
    }

    fn report(&self, group: &str, label: &str) {
        if self.samples.is_empty() {
            println!("bench {group}/{label}: no samples (routine never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "bench {group}/{label}: median {median:.1} ns/iter, mean {mean:.1} ns/iter ({} samples)",
            sorted.len()
        );
    }
}

/// Declares a bench group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
