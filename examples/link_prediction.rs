//! Link prediction on a co-authorship network, the Liben-Nowell &
//! Kleinberg (CIKM 2003) scenario cited by the paper: the probability of a
//! future collaboration is scored by RWR proximity.
//!
//! Protocol: generate a collaboration graph, hide 10% of the edges, rank
//! candidate partners for each probed author with exact top-k RWR, and
//! measure how many hidden edges appear among the predictions — versus a
//! random predictor.
//!
//! ```sh
//! cargo run --release --example link_prediction
//! ```

use kdash_core::{IndexOptions, KdashIndex};
use kdash_datagen::collaboration;
use kdash_graph::{GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let full = collaboration(600, 1500, 3);
    println!(
        "co-authorship graph: {} authors, {} collaboration edges",
        full.num_nodes(),
        full.num_edges()
    );

    // Hide 10% of the undirected collaborations.
    let mut hidden: HashSet<(NodeId, NodeId)> = HashSet::new();
    for (u, v, _) in full.edges() {
        if u < v && rng.gen_bool(0.10) {
            hidden.insert((u, v));
        }
    }
    let mut b = GraphBuilder::new(full.num_nodes());
    for (u, v, w) in full.edges() {
        let key = if u < v { (u, v) } else { (v, u) };
        if !hidden.contains(&key) {
            b.add_edge(u, v, w);
        }
    }
    let observed = b.build().expect("valid graph");
    println!("hidden {} collaborations; indexing the rest", hidden.len());

    let index = KdashIndex::build(&observed, IndexOptions::default()).expect("index");

    // Probe the authors that lost at least one edge.
    let probes: Vec<NodeId> = hidden.iter().map(|&(u, _)| u).take(80).collect();
    let k = 20;
    let mut rwr_hits = 0usize;
    let mut random_hits = 0usize;
    let mut trials = 0usize;
    for &q in &probes {
        // The top of the ranking is dominated by current collaborators;
        // query a wide enough pool that k non-neighbours survive filtering.
        let pool = k + observed.out_degree(q) + 40;
        let result = index.top_k(q, pool).expect("query");
        let predictions: Vec<NodeId> = result
            .items
            .iter()
            .map(|r| r.node)
            .filter(|&v| v != q && !observed.has_edge(q, v))
            .take(k)
            .collect();
        let truth: Vec<NodeId> = hidden
            .iter()
            .filter_map(|&(u, v)| {
                if u == q {
                    Some(v)
                } else if v == q {
                    Some(u)
                } else {
                    None
                }
            })
            .collect();
        if truth.is_empty() {
            continue;
        }
        trials += truth.len();
        rwr_hits += truth.iter().filter(|t| predictions.contains(t)).count();
        // Random predictor with the same budget.
        let mut random_set = HashSet::new();
        while random_set.len() < k {
            random_set.insert(rng.gen_range(0..observed.num_nodes()) as NodeId);
        }
        random_hits += truth.iter().filter(|t| random_set.contains(*t)).count();
    }
    let rwr_rate = rwr_hits as f64 / trials as f64;
    let random_rate = random_hits as f64 / trials as f64;
    println!("\nhidden-edge recovery within top-{k} predictions over {trials} hidden links:");
    println!("  RWR (K-dash, exact) : {:.1}%", 100.0 * rwr_rate);
    println!("  random predictor    : {:.1}%", 100.0 * random_rate);
    assert!(
        rwr_rate > random_rate,
        "RWR must beat random prediction ({rwr_rate:.3} vs {random_rate:.3})"
    );
    println!("\nRWR captures the global structure the paper's §2 describes.");
}
