//! Automatic image captioning over a mixed media graph, the Pan et al.
//! (KDD 2004) application from the paper's introduction: images, visual
//! regions and caption words are one graph; the caption of a query image
//! is read off the top-k highest-RWR-proximity word nodes.
//!
//! Each image is planted with a ground-truth caption of 4 words from a
//! topic vocabulary; regions link images with similar content.
//!
//! ```sh
//! cargo run --release --example image_captioning
//! ```

use kdash_core::{IndexOptions, KdashIndex};
use kdash_graph::{GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

const IMAGES: usize = 150;
const REGIONS: usize = 300;
const WORDS: usize = 60;
const TOPICS: usize = 6;

fn image(i: usize) -> NodeId {
    i as NodeId
}
fn region(i: usize) -> NodeId {
    (IMAGES + i) as NodeId
}
fn word(i: usize) -> NodeId {
    (IMAGES + REGIONS + i) as NodeId
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut b = GraphBuilder::new(IMAGES + REGIONS + WORDS);
    // Topic t owns words [t*10, t*10+10) and regions [t*50, t*50+50).
    let mut truth: Vec<Vec<usize>> = Vec::with_capacity(IMAGES);
    for i in 0..IMAGES {
        let topic = i % TOPICS;
        // captioned training images: link image <-> its caption words
        let mut caption = Vec::new();
        while caption.len() < 4 {
            let w = topic * (WORDS / TOPICS) + rng.gen_range(0..WORDS / TOPICS);
            if !caption.contains(&w) {
                caption.push(w);
            }
        }
        // the last image of each topic is "uncaptioned": it gets no word
        // edges and must be captioned via shared regions.
        let is_test = i >= IMAGES - TOPICS;
        if !is_test {
            for &w in &caption {
                b.add_undirected_edge(image(i), word(w), 1.0);
            }
        }
        truth.push(caption);
        // visual regions: images of one topic share region neighbourhoods
        for _ in 0..4 {
            let r = topic * (REGIONS / TOPICS) + rng.gen_range(0..REGIONS / TOPICS);
            b.add_undirected_edge(image(i), region(r), 1.0);
        }
    }
    let graph = b.build().expect("valid graph");
    println!(
        "mixed media graph: {IMAGES} images + {REGIONS} regions + {WORDS} words, {} edges",
        graph.num_edges()
    );

    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");

    // Caption the uncaptioned test images.
    let mut correct = 0usize;
    let mut total = 0usize;
    for i in IMAGES - TOPICS..IMAGES {
        let result = index.top_k(image(i), 80).expect("query");
        let predicted: Vec<usize> = result
            .items
            .iter()
            .filter(|r| r.node >= word(0))
            .take(4)
            .map(|r| (r.node - word(0)) as usize)
            .collect();
        let topic = i % TOPICS;
        let topic_words = topic * (WORDS / TOPICS)..(topic + 1) * (WORDS / TOPICS);
        let hits = predicted.iter().filter(|w| topic_words.contains(w)).count();
        println!(
            "image {i} (topic {topic}): predicted words {predicted:?} — {hits}/4 on-topic"
        );
        correct += hits;
        total += predicted.len();
    }
    let accuracy = correct as f64 / total as f64;
    println!("\ncaption word accuracy: {:.1}%", 100.0 * accuracy);
    assert!(accuracy > 0.5, "region-mediated captions should be mostly on-topic");
    println!("exact RWR, no approximation error in the captions — the paper's §1 promise.");
}
