//! Social recommendation over a user–tag–item graph, the scenario of
//! Konstas et al. (SIGIR 2009) that motivates RWR in the paper's
//! introduction: items whose RWR proximity from a user is highest are the
//! recommendations.
//!
//! The graph links users to the tags they use and tags to the items they
//! annotate, plus user–user friendships. A planted "taste group" lets us
//! check the recommendations make sense.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use kdash_core::{IndexOptions, KdashIndex};
use kdash_graph::{GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

const USERS: usize = 120;
const TAGS: usize = 40;
const ITEMS: usize = 200;

fn user(i: usize) -> NodeId {
    i as NodeId
}
fn tag(i: usize) -> NodeId {
    (USERS + i) as NodeId
}
fn item(i: usize) -> NodeId {
    (USERS + TAGS + i) as NodeId
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut b = GraphBuilder::new(USERS + TAGS + ITEMS);

    // Two taste groups: users in group g prefer tags [g*20, g*20+20) and
    // items tagged by them. Group membership = user id parity.
    for u in 0..USERS {
        let group = u % 2;
        // friendships, mostly within the group
        for _ in 0..3 {
            let friend = loop {
                let f = rng.gen_range(0..USERS);
                if f != u && (f % 2 == group || rng.gen_bool(0.15)) {
                    break f;
                }
            };
            b.add_undirected_edge(user(u), user(friend), 1.0);
        }
        // tagging activity
        for _ in 0..5 {
            let t = group * 20 + rng.gen_range(0..20);
            b.add_undirected_edge(user(u), tag(t), 2.0);
        }
    }
    // tags annotate items; item halves align with tag halves
    for i in 0..ITEMS {
        let group = i % 2;
        for _ in 0..3 {
            let t = group * 20 + rng.gen_range(0..20);
            b.add_undirected_edge(tag(t), item(i), 1.0);
        }
    }
    let graph = b.build().expect("valid graph");
    println!(
        "tripartite graph: {USERS} users + {TAGS} tags + {ITEMS} items, {} edges",
        graph.num_edges()
    );

    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("index");

    // Recommend for one user of each group. RWR ranks *all* nodes; we keep
    // the top items (k chosen large enough to survive the filtering).
    for u in [0usize, 1] {
        let result = index.top_k(user(u), 60).expect("query");
        let recs: Vec<(NodeId, f64)> = result
            .items
            .iter()
            .filter(|r| r.node >= item(0))
            .take(5)
            .map(|r| (r.node - item(0), r.proximity))
            .collect();
        println!("\nuser {u} (taste group {}): top items", u % 2);
        let mut in_group = 0;
        for (it, p) in &recs {
            let group = (*it as usize) % 2;
            if group == u % 2 {
                in_group += 1;
            }
            println!("  item {:<4} group {} proximity {:.4e}", it, group, p);
        }
        println!(
            "  {}/{} recommendations align with the user's taste group",
            in_group,
            recs.len()
        );
        assert!(in_group * 2 >= recs.len(), "recommendations should mostly match the group");
    }
    println!("\nearly-termination makes these queries cheap: no parameter tuning needed.");
}
