//! Quickstart: index a graph, run an exact top-k RWR query, check the
//! answer against the iterative ground truth — then *edit the graph* and
//! serve the fresh answers through an incremental index update instead
//! of a rebuild.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kdash_baselines::{IterativeRwr, TopKEngine};
use kdash_core::{GatherKernel, IndexBuilder};
use kdash_datagen::DatasetProfile;
use kdash_dynamic::{DynamicIndex, Journal, UpdateBatch};
use kdash_graph::EdgeEdit;
use kdash_serve::{EpochWriter, ServeLoop, ServeOptions};

fn main() {
    // 1. A graph. Any directed, weighted CsrGraph works; here we use the
    //    synthetic stand-in for the paper's Dictionary dataset.
    let graph = DatasetProfile::Dictionary.generate(0.05, 42);
    println!(
        "graph: {} ({} nodes, {} edges)",
        DatasetProfile::Dictionary,
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Build the K-dash index (hybrid reordering, c = 0.95 — the paper's
    //    defaults). This is the one-off precomputation phase, a staged
    //    pipeline; `.threads(0)` parallelises the dominant inversion stage
    //    over all cores with bit-identical output.
    let (index, report) =
        IndexBuilder::new().threads(0).build_with_report(&graph).expect("index build");
    println!("precompute: {:?} total, stage by stage:", report.total());
    for timing in &report.stages {
        println!("  {:<14} {:?}", timing.stage.name(), timing.duration);
    }
    if let (Some(communities), Some(border)) =
        (report.ordering.communities, report.ordering.border_nodes)
    {
        println!("  (hybrid ordering: {communities} Louvain communities, {border} border nodes)");
    }
    println!(
        "inverse nnz / edges = {:.2} (paper's Fig. 5 metric; ~O(m) storage)",
        index.stats().inverse_nnz_ratio()
    );
    // The stored U⁻¹ uses the blocked index layout by default: u16 column
    // deltas against aligned block anchors, ~half the index bytes of flat
    // CSR on the fill-dominated inverse rows — bit-identical answers.
    println!(
        "U⁻¹ layout: {} ({:.2} index bytes/nnz; flat CSR would be 4.00)",
        index.layout().name(),
        index.stats().uinv_index_bytes as f64 / index.stats().nnz_u_inv.max(1) as f64
    );

    // 3. Query: exact top-10 highest-proximity nodes for node 0. A serving
    //    loop holds one `Searcher` (allocation-free after warm-up) and can
    //    pick its gather kernel. `Adaptive` — the recommended default —
    //    chooses scalar or wide *per candidate row* from the row's stats
    //    and the query column's density: a pure function of index + query,
    //    so the choice is identical on every machine (within the wide
    //    class, AVX2 and the portable unrolled kernel are bit-identical).
    //    An explicit choice the CPU cannot honour is a typed error, so
    //    deployments never silently degrade.
    let q = 0;
    let k = 10;
    let mut searcher =
        kdash_core::Searcher::with_kernel(&index, GatherKernel::Adaptive).expect("kernel");
    let result = searcher.top_k(q, k).expect("query");
    println!("\ntop-{k} nodes for query {q} (gather kernel: {}):", searcher.kernel().name());
    for (rank, item) in result.items.iter().enumerate() {
        println!("  #{:<2} node {:<6} proximity {:.6e}", rank + 1, item.node, item.proximity);
    }
    // The BFS frontier is expanded lazily, fused into the search loop: on
    // early-terminated queries `frontier_expanded` < `reachable`, and
    // `reachable` itself is only the *discovered* count — the pruned-away
    // layers are never even enumerated.
    println!(
        "visited {} nodes, computed {} exact proximities, expanded {} of {} discovered, \
         early-termination: {}",
        result.stats.visited,
        result.stats.proximity_computations,
        result.stats.frontier_expanded,
        result.stats.reachable,
        result.stats.terminated_early
    );
    // The adaptive policy is observable per query: which kernel class ran
    // each row, and what the gathers streamed.
    println!(
        "gather: {} — {} rows scalar / {} wide, {} index bytes touched",
        result.stats.kernel,
        result.stats.rows_scalar,
        result.stats.rows_wide,
        result.stats.bytes_touched
    );

    // 4. Verify exactness against the iterative definition (Equation 1).
    let truth = IterativeRwr::new(&graph, index.restart_probability()).top_k(q, k);
    let exact = result
        .items
        .iter()
        .zip(&truth)
        .all(|(got, want)| (got.proximity - want.1).abs() < 1e-9);
    println!("\nmatches iterative ground truth: {exact}");
    assert!(exact, "K-dash must be exact");

    // 5. The graph changes — serve it fresh without a rebuild. The
    //    dynamic engine applies a validated edit batch, refactorises the
    //    (cheap) LU, bounds the damage with a Gilbert–Peierls reach
    //    analysis, and re-solves only the dirty L⁻¹/U⁻¹ columns. The
    //    patched index is bit-for-bit what a from-scratch rebuild under
    //    the same node order would produce.
    let mut dynamic = DynamicIndex::new(index).expect("attach update engine");
    let far = (graph.num_nodes() / 2) as u32;
    let batch = UpdateBatch::new(vec![
        EdgeEdit::Insert { src: q, dst: far, weight: 3.0 },
        EdgeEdit::Insert { src: far, dst: q, weight: 1.0 },
    ])
    .expect("valid batch");
    let report = dynamic.apply(&batch).expect("incremental update");
    println!(
        "\nincremental update: {} edits in {:?} — re-eliminated {}/{} factor columns, re-solved \
         {}/{} L⁻¹ and {}/{} U⁻¹ columns (update epoch {})",
        report.edits,
        report.total_time(),
        report.dirty_factor_columns_recomputed,
        report.num_columns,
        report.dirty_linv_columns,
        report.num_columns,
        report.dirty_uinv_columns,
        report.num_columns,
        dynamic.index().update_epoch(),
    );

    // Queries see the edited graph immediately — and exactly.
    let fresh = dynamic.index().top_k(q, k).expect("fresh query");
    let edited_graph = graph
        .apply_edits(batch.edits())
        .expect("same edits apply to the raw graph");
    let fresh_truth = IterativeRwr::new(&edited_graph, 0.95).top_k(q, k);
    let fresh_exact = fresh
        .items
        .iter()
        .zip(&fresh_truth)
        .all(|(got, want)| (got.proximity - want.1).abs() < 1e-9);
    println!("fresh answers match the edited graph's ground truth: {fresh_exact}");
    assert!(fresh_exact, "updates must serve the edited graph exactly");
    assert!(
        fresh.items.iter().any(|item| item.node == far),
        "the freshly linked node should now rank in the top-{k}"
    );

    // 6. A queue of batches coalesces into one incremental pass — one
    //    refactorisation, one reach analysis, one re-solve — bit-identical
    //    to applying them one by one, with the epoch still advancing by
    //    the queue length. `predict` prices the queue without mutating
    //    anything. On the command line the same pair is
    //    `kdash update --coalesce --dry-run`.
    let queue = vec![
        UpdateBatch::new(vec![EdgeEdit::Reweight { src: q, dst: far, weight: 1.5 }])
            .expect("valid batch"),
        UpdateBatch::new(vec![EdgeEdit::Delete { src: far, dst: q }]).expect("valid batch"),
    ];
    let prediction = dynamic.predict(&queue).expect("dry-run prediction");
    let coalesced = dynamic.apply_coalesced(&queue).expect("coalesced update");
    println!(
        "coalesced {} batches in {:?} — predicted ≤{} factor candidates, re-eliminated {} \
         (update epoch {})",
        coalesced.batches,
        coalesced.total_time(),
        prediction.candidate_factor_columns,
        coalesced.dirty_factor_columns_recomputed,
        dynamic.index().update_epoch(),
    );
    assert!(coalesced.dirty_factor_columns_recomputed <= prediction.candidate_factor_columns);

    // 7. Memory-bound deployments: a *sparsified* build drops inverse
    //    entries below a tolerance ε at precompute time, shrinking the
    //    stored index. Queries then run certified residual refinement —
    //    an approximate solve from the truncated inverses, then
    //    corrections until the residual norm *proves* the top-k set and
    //    order — so the ranking stays exact. Uncertifiable queries (two
    //    proximities inside the same ulp) fail loudly instead of
    //    guessing. On the command line: `kdash build --drop-tol 1e-5`.
    let sparsified = IndexBuilder::new()
        .drop_tolerance(1e-5)
        .threads(0)
        .build(&edited_graph)
        .expect("sparsified build");
    let dense_nnz = dynamic.index().stats().nnz_l_inv + dynamic.index().stats().nnz_u_inv;
    let sparse_nnz = sparsified.stats().nnz_l_inv + sparsified.stats().nnz_u_inv;
    println!(
        "\nsparsified tier (ε = 1e-5): {sparse_nnz} inverse nnz vs {dense_nnz} dense \
         ({:.1}% of the dense store), dropped l1 mass {:.3e}",
        100.0 * sparse_nnz as f64 / dense_nnz.max(1) as f64,
        sparsified.dropped_mass(),
    );
    let refined = sparsified.top_k(q, k).expect("refined query");
    // `dynamic` serves the coalesced queue's graph; the sparsified index
    // was built on the same edited graph *before* that queue, so compare
    // against the pre-queue exact ranking captured in `fresh`.
    let same_ranking =
        refined.items.iter().zip(&fresh.items).all(|(a, b)| a.node == b.node);
    println!(
        "refined top-{k} matches the dense-exact ranking: {same_ranking} \
         ({} refinement iteration(s), {} extra nnz streamed)",
        refined.stats.refinement_iterations, refined.stats.refinement_nnz,
    );
    assert!(same_ranking, "the sparsified tier must keep the ranking exact");

    // 8. Durability: journaled updates survive a crash. Each batch is
    //    appended + fsynced to a sidecar write-ahead journal *before* its
    //    patch installs, so an acknowledged update can never be lost —
    //    recovery replays the journal onto the last snapshot and lands
    //    bit-identically on the pre-crash index. On the command line:
    //    `kdash update --journal`, then after a crash `kdash recover`
    //    (or just run `update --journal` again — it auto-recovers).
    let dir = std::env::temp_dir().join(format!("kdash-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("quickstart.kdash");
    let journal_path = Journal::sidecar_path(&snapshot_path);
    kdash_core::save_atomic(dynamic.index(), &snapshot_path).expect("snapshot");
    let journal = Journal::create(&journal_path, dynamic.index().update_epoch())
        .expect("create journal");
    let epoch_before = dynamic.index().update_epoch();
    let mut journaled = DynamicIndex::new(dynamic.into_index())
        .expect("attach")
        .journaled(journal)
        .expect("attach journal");
    let durable_batch = UpdateBatch::new(vec![
        EdgeEdit::Reweight { src: q, dst: far, weight: 2.0 },
        EdgeEdit::Insert { src: far, dst: q, weight: 1.0 },
    ])
    .expect("valid batch");
    journaled.apply(&durable_batch).expect("journaled update");
    let want = journaled.index().top_k(q, k).expect("pre-crash query");
    drop(journaled); // the "crash": the new epoch exists only in the journal

    let snapshot = kdash_core::KdashIndex::load(
        std::io::BufReader::new(std::fs::File::open(&snapshot_path).expect("snapshot survives")),
    )
    .expect("snapshot loads");
    let (mut recovered, recovery) =
        DynamicIndex::recover(snapshot, &journal_path).expect("recovery");
    println!(
        "\ncrash recovery: snapshot epoch {} + {} journaled batch(es) -> epoch {} in {:?}",
        recovery.snapshot_epoch,
        recovery.replayed_batches,
        recovery.final_epoch,
        recovery.replay_time,
    );
    assert_eq!(recovery.snapshot_epoch, epoch_before);
    let got = recovered.index().top_k(q, k).expect("post-recovery query");
    let identical = got
        .items
        .iter()
        .zip(&want.items)
        .all(|(a, b)| a.node == b.node && a.proximity.to_bits() == b.proximity.to_bits());
    println!("post-recovery answers are bit-identical to pre-crash: {identical}");
    assert!(identical, "recovery must reproduce the acknowledged state exactly");
    // Fold the journal into a fresh snapshot (the journal truncates).
    recovered.checkpoint(&snapshot_path).expect("checkpoint");
    let _ = std::fs::remove_dir_all(&dir);

    // 9. Serving: publish the index as immutable epoch snapshots behind
    //    an `EpochStore` and answer queries from a `ServeLoop` worker
    //    pool. Readers pin an epoch with one atomic load and never
    //    block on writers; `EpochWriter::apply` prepares epoch N+1 off
    //    the serving path and swaps it in, so the freshness lag
    //    (serving epoch behind the latest acked write) is non-zero only
    //    inside the swap-install window and converges back to 0. On
    //    the command line: `kdash serve <index> --bench`.
    let (mut writer, store) = EpochWriter::new(recovered);
    let serve_loop = ServeLoop::start(std::sync::Arc::clone(&store), ServeOptions::default())
        .expect("start serve loop");
    writer.attach_metrics(serve_loop.metrics());
    let served = serve_loop.query_blocking(q, k).expect("served query");
    let serving_matches = served
        .result
        .items
        .iter()
        .zip(&got.items)
        .all(|(a, b)| a.node == b.node && a.proximity.to_bits() == b.proximity.to_bits());
    println!(
        "\nserving tier: {} worker(s) at epoch {}, served answer bit-identical to a \
         standalone query: {serving_matches}",
        serve_loop.workers(),
        served.epoch,
    );
    assert!(serving_matches, "serving must not change answers");

    // Update concurrently with reads: queries keep flowing against the
    // pinned epoch while each write installs, then pick up the new
    // epoch at the next batch boundary.
    let target_epoch = store.epoch() + 3;
    let mut max_lag_seen = 0;
    std::thread::scope(|scope| {
        let writer = &mut writer;
        scope.spawn(move || {
            for edit in [
                EdgeEdit::Reweight { src: q, dst: far, weight: 2.5 },
                EdgeEdit::Delete { src: far, dst: q },
                EdgeEdit::Insert { src: far, dst: q, weight: 0.5 },
            ] {
                let batch = UpdateBatch::new(vec![edit]).expect("valid batch");
                writer.apply(&batch).expect("concurrent update");
            }
        });
        loop {
            let resp = serve_loop.query_blocking(q, k).expect("query during updates");
            max_lag_seen = max_lag_seen.max(resp.freshness_lag);
            if resp.epoch >= target_epoch {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    });
    let final_resp = serve_loop.query_blocking(q, k).expect("settled query");
    println!(
        "3 updates applied under live reads: serving epoch {} (target {target_epoch}), \
         worst freshness lag seen {max_lag_seen} epoch(s), settled lag {} — answers always \
         came from one consistent pinned snapshot",
        final_resp.epoch,
        store.freshness_lag(),
    );
    assert_eq!(final_resp.epoch, target_epoch, "serving must converge to the acked epoch");
    assert_eq!(store.freshness_lag(), 0, "lag must settle once installs finish");
    let reference = writer.engine().index().top_k(q, k).expect("reference query");
    let fresh_serving = final_resp
        .result
        .items
        .iter()
        .zip(&reference.items)
        .all(|(a, b)| a.node == b.node && a.proximity.to_bits() == b.proximity.to_bits());
    assert!(fresh_serving, "settled serving answers must match the latest index exactly");
    let m = serve_loop.metrics().snapshot();
    println!(
        "serve metrics: {} queries, p50 {:.3}ms p99 {:.3}ms, {} epoch swaps (worst install \
         {:.3}ms), {} shed",
        m.completed, m.latency_p50_ms, m.latency_p99_ms, m.swaps, m.swap_max_ms, m.shed,
    );
    serve_loop.shutdown();
}
