//! Quickstart: index a graph, run an exact top-k RWR query, and check the
//! answer against the iterative ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kdash_baselines::{IterativeRwr, TopKEngine};
use kdash_core::IndexBuilder;
use kdash_datagen::DatasetProfile;

fn main() {
    // 1. A graph. Any directed, weighted CsrGraph works; here we use the
    //    synthetic stand-in for the paper's Dictionary dataset.
    let graph = DatasetProfile::Dictionary.generate(0.05, 42);
    println!(
        "graph: {} ({} nodes, {} edges)",
        DatasetProfile::Dictionary,
        graph.num_nodes(),
        graph.num_edges()
    );

    // 2. Build the K-dash index (hybrid reordering, c = 0.95 — the paper's
    //    defaults). This is the one-off precomputation phase, a staged
    //    pipeline; `.threads(0)` parallelises the dominant inversion stage
    //    over all cores with bit-identical output.
    let (index, report) =
        IndexBuilder::new().threads(0).build_with_report(&graph).expect("index build");
    println!("precompute: {:?} total, stage by stage:", report.total());
    for timing in &report.stages {
        println!("  {:<14} {:?}", timing.stage.name(), timing.duration);
    }
    if let (Some(communities), Some(border)) =
        (report.ordering.communities, report.ordering.border_nodes)
    {
        println!("  (hybrid ordering: {communities} Louvain communities, {border} border nodes)");
    }
    println!(
        "inverse nnz / edges = {:.2} (paper's Fig. 5 metric; ~O(m) storage)",
        index.stats().inverse_nnz_ratio()
    );

    // 3. Query: exact top-10 highest-proximity nodes for node 0.
    let q = 0;
    let k = 10;
    let result = index.top_k(q, k).expect("query");
    println!("\ntop-{k} nodes for query {q}:");
    for (rank, item) in result.items.iter().enumerate() {
        println!("  #{:<2} node {:<6} proximity {:.6e}", rank + 1, item.node, item.proximity);
    }
    println!(
        "visited {} nodes, computed {} exact proximities, early-termination: {}",
        result.stats.visited, result.stats.proximity_computations, result.stats.terminated_early
    );

    // 4. Verify exactness against the iterative definition (Equation 1).
    let truth = IterativeRwr::new(&graph, index.restart_probability()).top_k(q, k);
    let exact = result
        .items
        .iter()
        .zip(&truth)
        .all(|(got, want)| (got.proximity - want.1).abs() < 1e-9);
    println!("\nmatches iterative ground truth: {exact}");
    assert!(exact, "K-dash must be exact");
}
